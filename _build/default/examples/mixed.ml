(* Mixed symbolic/numeric example — the paper's closing pitch: "certain
   artificial intelligence applications ... that presently require a
   mixture of symbolic heuristic calculations and intense numerical
   crunching."

   A tiny adaptive numerical integrator whose integrand is built
   {e symbolically}: formulas are s-expressions, compiled-Lisp code walks
   them to evaluate, and the numeric inner loop runs in raw single-float
   form.  Also demonstrates closures (the integrand is a function value)
   and dynamic variables (the tolerance).

   Run with:  dune exec examples/mixed.exe *)

module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Cpu = S1_machine.Cpu

let program =
  {lisp|
;; evaluate a formula tree at x
(defun feval (e x)
  (declare (single-float x))
  (cond ((numberp e) (float e))
        ((eq e 'x) x)
        (t (caseq (car e)
             ((+) (+$f (feval (cadr e) x) (feval (caddr e) x)))
             ((*) (*$f (feval (cadr e) x) (feval (caddr e) x)))
             ((sin) (sin$f (feval (cadr e) x)))
             (t (error "bad formula"))))))

;; trapezoid integration with a fixed number of panels
(defvar *panels* 64)

(defun integrate (f lo hi)
  (declare (single-float lo hi))
  (let ((h (/$f (-$f hi lo) (float *panels*))))
    (prog (i acc x)
      (setq i 1)
      (setq acc (/$f (+$f (funcall f lo) (funcall f hi)) 2.0))
      loop
      (if (>= i *panels*) (return (*$f acc h)))
      (setq x (+$f lo (*$f h (float i))))
      (setq acc (+$f acc (funcall f x)))
      (setq i (1+ i))
      (go loop))))

;; build the integrand as a closure over a symbolic formula
(defun integrand (formula) (lambda (x) (feval formula x)))
|lisp}

let () =
  let c = C.create () in
  ignore (C.eval_string c program);
  let show src = Printf.printf "  %s\n    => %s\n" src (C.print_value c (C.eval_string c src)) in

  print_endline "== symbolically-built integrands, numerically integrated ==";
  show "(integrate (integrand '(* x x)) 0.0 1.0)";
  show "(integrate (integrand '(+ (* x x) (* 2.0 x))) 0.0 1.0)";
  show "(integrate (integrand '(sin x)) 0.0 3.14159265)";

  print_endline "\n== accuracy scales with *panels* (a dynamic variable) ==";
  show "(let ((*panels* 4)) (declare (special *panels*)) (integrate (integrand '(* x x)) 0.0 1.0))";
  show "(let ((*panels* 512)) (declare (special *panels*)) (integrate (integrand '(* x x)) 0.0 1.0))";

  Cpu.reset_stats c.C.rt.Rt.cpu;
  ignore (C.eval_string c "(integrate (integrand '(sin x)) 0.0 3.14159265)");
  let s = c.C.rt.Rt.cpu.Cpu.stats in
  Printf.printf "\n== cost of the sin integral ==\n  %d cycles, %d instructions, %d calls\n"
    s.Cpu.cycles s.Cpu.instructions s.Cpu.calls
