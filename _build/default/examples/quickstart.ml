(* Quickstart: boot a Lisp world, compile functions, run them, and look
   at what the compiler did.

   Run with:  dune exec examples/quickstart.exe *)

module C = S1_core.Compiler
module Reader = S1_sexp.Reader

let () =
  (* A compiler owns a live Lisp world: a simulated S-1 with its heap,
     standard library, and an interpreter sharing the same globals. *)
  let c = C.create () in
  let eval src = C.print_value c (C.eval_string c src) in

  print_endline "== evaluating through the compiler ==";
  List.iter
    (fun src -> Printf.printf "  %s\n    => %s\n" src (eval src))
    [
      "(+ 1 2 3)";
      "(let ((x 4) (y 5)) (* x y))";
      "'(a (b c) d)";
      "(/ 10 4)" (* exact rationals *);
      "(* 123456789123456789 987654321987654321)" (* bignums *);
    ];

  print_endline "\n== defining and calling compiled functions ==";
  ignore
    (C.eval_string c
       "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))");
  Printf.printf "  (fib 15) => %s\n" (eval "(fib 15)");

  (* The paper's tail-recursive exponentiation (§2): the self-calls
     compile to parameter-passing gotos, so the stack stays flat. *)
  ignore
    (C.eval_string c
       "(defun exptl (x n a)\n\
       \  (cond ((zerop n) a)\n\
       \        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))\n\
       \        (t (exptl (* x x) (floor n 2) a))))");
  Printf.printf "  (exptl 3 40 1) => %s\n" (eval "(exptl 3 40 1)");

  print_endline "\n== closures are first-class compiled objects ==";
  ignore (C.eval_string c "(defun make-adder (n) (lambda (x) (+ x n)))");
  Printf.printf "  (funcall (make-adder 5) 10) => %s\n" (eval "(funcall (make-adder 5) 10)");

  print_endline "\n== inspecting the compiler ==";
  print_endline "  Phase structure (the paper's Table 1):";
  List.iter (fun p -> Printf.printf "    - %s\n" p) C.phases;

  let listing, transcript =
    C.listing_of c (Reader.parse_one "(defun poly (x) (declare (single-float x)) (+$f (*$f x x) x 1.0))")
  in
  print_endline "\n  Optimizer transcript for (defun poly (x) ... (+$f (*$f x x) x 1.0)):";
  print_string (S1_transform.Transcript.to_string transcript);
  print_endline "  Generated S-1 assembly:";
  String.split_on_char '\n' listing
  |> List.iter (fun l -> Printf.printf "    %s\n" l);

  let stats = c.C.rt.S1_runtime.Rt.cpu.S1_machine.Cpu.stats in
  Printf.printf "\n== simulator statistics for this session ==\n%s\n"
    (Format.asprintf "%a" S1_machine.Cpu.pp_stats stats)
