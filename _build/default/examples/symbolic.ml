(* Symbolic example: the traditional Lisp workload (the paper's lineage
   runs through MACSYMA).  A small symbolic differentiator over
   s-expression formulas, compiled and run on the simulated S-1,
   exercising list structure, recursion, CASEQ dispatch, and the garbage
   collector.

   Run with:  dune exec examples/symbolic.exe *)

module C = S1_core.Compiler
module Rt = S1_runtime.Rt

let deriv_program =
  {lisp|
(defun deriv (e x)
  (cond ((numberp e) 0)
        ((symbolp e) (if (eq e x) 1 0))
        (t (caseq (car e)
             ((+) (list '+ (deriv (cadr e) x) (deriv (caddr e) x)))
             ((-) (list '- (deriv (cadr e) x) (deriv (caddr e) x)))
             ((*) (list '+
                        (list '* (cadr e) (deriv (caddr e) x))
                        (list '* (deriv (cadr e) x) (caddr e))))
             ((/) (list '/
                        (list '- (list '* (deriv (cadr e) x) (caddr e))
                                 (list '* (cadr e) (deriv (caddr e) x)))
                        (list '* (caddr e) (caddr e))))
             (t (error "unknown operator"))))))

(defun simplify (e)
  (if (atom e) e
      (let ((op (car e)) (a (simplify (cadr e))) (b (simplify (caddr e))))
        (cond ((and (numberp a) (numberp b))
               (caseq op
                 ((+) (+ a b)) ((-) (- a b)) ((*) (* a b))
                 (t (list op a b))))
              ((and (eq op '*) (or (eql a 0) (eql b 0))) 0)
              ((and (eq op '*) (eql a 1)) b)
              ((and (eq op '*) (eql b 1)) a)
              ((and (eq op '+) (eql a 0)) b)
              ((and (eq op '+) (eql b 0)) a)
              ((and (eq op '-) (eql b 0)) a)
              (t (list op a b))))))

(defun deriv-n (e x n)
  (if (zerop n) e (deriv-n (simplify (deriv e x)) x (1- n))))
|lisp}

let () =
  let c = C.create () in
  ignore (C.eval_string c deriv_program);
  let show src = Printf.printf "  %s\n    => %s\n" src (C.print_value c (C.eval_string c src)) in

  print_endline "== symbolic differentiation, compiled ==";
  show "(deriv '(+ (* x x) (* 3 x)) 'x)";
  show "(simplify (deriv '(+ (* x x) (* 3 x)) 'x))";
  show "(simplify (deriv '(* x (* x x)) 'x))";
  show "(simplify (deriv '(/ 1 x) 'x))";
  print_endline "\n== repeated derivatives of (* x (* x (* x (* x x)))) ==";
  show "(deriv-n '(* x (* x (* x (* x x)))) 'x 1)";
  show "(deriv-n '(* x (* x (* x (* x x)))) 'x 2)";
  show "(deriv-n '(* x (* x (* x (* x x)))) 'x 3)";
  show "(deriv-n '(* x (* x (* x (* x x)))) 'x 4)";
  show "(deriv-n '(* x (* x (* x (* x x)))) 'x 5)";

  let h = S1_runtime.Heap.stats c.C.rt.Rt.heap in
  Printf.printf
    "\n== heap behaviour ==\n  %d allocations, %d words, %d collections, %d words live\n"
    h.S1_runtime.Heap.allocations h.S1_runtime.Heap.words_allocated
    h.S1_runtime.Heap.collections
    (S1_runtime.Heap.live_words c.C.rt.Rt.heap)
