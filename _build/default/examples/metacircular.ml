(* A metacircular evaluator: Lisp-in-Lisp, with the outer Lisp compiled
   to S-1 machine code by this compiler and executed on the simulator.
   Three layers deep: OCaml simulates the S-1, the S-1 runs compiled
   Lisp, and that Lisp interprets more Lisp.

   Exercises deep recursion, CASEQ dispatch, association lists, heavy
   consing (and therefore the garbage collector), and symbols as data.

   Run with:  dune exec examples/metacircular.exe *)

module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Cpu = S1_machine.Cpu

let evaluator =
  {lisp|
;; Environments are association lists of (name . value).
(defun env-lookup (name env)
  (let ((hit (assq name env)))
    (if hit (cdr hit) (error "unbound meta-variable"))))

(defun mbind (params args env)
  (if (null params) env
      (cons (cons (car params) (car args))
            (mbind (cdr params) (cdr args) env))))

(defun mevlis (xs env)
  (if (null xs) ()
      (cons (meval (car xs) env) (mevlis (cdr xs) env))))

(defun mapply (f args)
  (if (and (consp f) (eq (car f) 'closure))
      (meval (caddr f) (mbind (cadr f) args (cadr (cddr f))))
      (error "calling a non-function")))

(defun meval (e env)
  (cond ((numberp e) e)
        ((null e) ())
        ((symbolp e) (env-lookup e env))
        (t (caseq (car e)
             ((quote)  (cadr e))
             ((if)     (if (meval (cadr e) env)
                           (meval (caddr e) env)
                           (meval (cadr (cddr e)) env)))
             ((lambda) (list 'closure (cadr e) (caddr e) env))
             ((+)      (+ (meval (cadr e) env) (meval (caddr e) env)))
             ((-)      (- (meval (cadr e) env) (meval (caddr e) env)))
             ((*)      (* (meval (cadr e) env) (meval (caddr e) env)))
             ((<)      (< (meval (cadr e) env) (meval (caddr e) env)))
             ((eq)     (eq (meval (cadr e) env) (meval (caddr e) env)))
             ((cons)   (cons (meval (cadr e) env) (meval (caddr e) env)))
             ((car)    (car (meval (cadr e) env)))
             ((cdr)    (cdr (meval (cadr e) env)))
             (t        (mapply (meval (car e) env) (mevlis (cdr e) env)))))))
|lisp}

let () =
  let c = C.create () in
  ignore (C.eval_string c evaluator);
  let show src =
    Printf.printf "  %s\n    => %s\n" src (C.print_value c (C.eval_string c src))
  in
  print_endline "== a compiled Lisp interpreting Lisp ==";
  show "(meval '(+ 1 2) ())";
  show "(meval '((lambda (x y) (* x y)) 6 7) ())";
  show "(meval '(if (< 1 2) 'yes 'no) ())";
  (* closures close over the meta-environment *)
  show "(meval '(((lambda (n) (lambda (x) (+ x n))) 5) 10) ())";
  (* self-application: factorial without define *)
  show
    "(meval '((lambda (fact n) (fact fact n))\n\
    \          (lambda (self k) (if (< k 1) 1 (* k (self self (- k 1)))))\n\
    \          10)\n\
    \        ())";
  (* list processing in the meta-language *)
  show
    "(meval '((lambda (map f xs) (map map f xs))\n\
    \          (lambda (self f xs)\n\
    \            (if (eq xs '()) '() (cons (f (car xs)) (self self f (cdr xs)))))\n\
    \          (lambda (x) (* x x))\n\
    \          '(1 2 3 4 5))\n\
    \        ())";
  Cpu.reset_stats c.C.rt.Rt.cpu;
  ignore
    (C.eval_string c
       "(meval '((lambda (fact n) (fact fact n))\n\
       \          (lambda (self k) (if (< k 1) 1 (* k (self self (- k 1)))))\n\
       \          40) ())");
  let s = c.C.rt.Rt.cpu.Cpu.stats in
  let h = S1_runtime.Heap.stats c.C.rt.Rt.heap in
  Printf.printf
    "\n== meta-factorial of 40 (a bignum) ==\n\
    \  %d simulated cycles, %d calls, %d heap allocations, %d collections\n"
    s.Cpu.cycles s.Cpu.calls h.S1_runtime.Heap.allocations h.S1_runtime.Heap.collections
