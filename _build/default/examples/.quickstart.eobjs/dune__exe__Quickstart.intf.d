examples/quickstart.mli:
