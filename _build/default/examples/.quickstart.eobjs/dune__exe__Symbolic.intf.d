examples/symbolic.mli:
