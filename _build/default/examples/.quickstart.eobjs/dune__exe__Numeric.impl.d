examples/numeric.ml: Printf S1_core S1_machine S1_runtime
