examples/numeric.mli:
