examples/quickstart.ml: Format List Printf S1_core S1_machine S1_runtime S1_sexp S1_transform String
