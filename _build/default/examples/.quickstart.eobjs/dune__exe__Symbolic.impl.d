examples/symbolic.ml: Printf S1_core S1_runtime
