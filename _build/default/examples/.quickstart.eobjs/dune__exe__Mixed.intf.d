examples/mixed.mli:
