examples/metacircular.mli:
