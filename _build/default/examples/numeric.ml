(* Numeric example: the paper's motivating claim is that a Lisp compiler
   can "compete with the S-1 PASCAL and FORTRAN compilers for quality of
   compiled numerical code".  This example compiles the same kernels with
   and without type declarations and compares cycle counts against a
   hand-scheduled "ideal" assembly version (standing in for the FORTRAN
   compiler's output, per the Fateman experiment the paper cites).

   Run with:  dune exec examples/numeric.exe *)

module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Cpu = S1_machine.Cpu
module Mem = S1_machine.Mem
module Isa = S1_machine.Isa
module Asm = S1_machine.Asm
module F36 = S1_machine.Float36

let declared_horner =
  "(defun horner (x a b c d e)\n\
  \  (declare (single-float x a b c d e))\n\
  \  (+$f (*$f (+$f (*$f (+$f (*$f (+$f (*$f a x) b) x) c) x) d) x) e))"

let generic_horner =
  "(defun horner-g (x a b c d e)\n\
  \  (+ (* (+ (* (+ (* (+ (* a x) b) x) c) x) d) x) e))"

let cycles_of c src call =
  ignore (C.eval_string c src);
  (* warm up, then measure one call *)
  ignore (C.eval_string c call);
  Cpu.reset_stats c.C.rt.Rt.cpu;
  let r = C.eval_string c call in
  (c.C.rt.Rt.cpu.Cpu.stats.Cpu.cycles, C.print_value c r)

(* The ideal hand code: arguments pre-unboxed in registers. *)
let ideal_horner_cycles () =
  let cpu = Cpu.create () in
  let open Isa in
  let f v = Imm (F36.encode_single v) in
  let image =
    Cpu.load cpu
      Asm.
        [
          Label "GO";
          Instr (Mov (Reg 10, f 2.0)) (* x *);
          Instr (Mov (Reg 11, f 1.0)) (* a *);
          Instr (Mov (Reg 12, f (-3.0))) (* b *);
          Instr (Mov (Reg 13, f 0.5)) (* c *);
          Instr (Mov (Reg 14, f 4.0)) (* d *);
          Instr (Mov (Reg 15, f (-1.0))) (* e *);
          Label "KERNEL";
          Instr (Bin (FMULT, S, Reg rta, Reg 11, Reg 10));
          Instr (Bin (FADD, S, Reg rta, Reg rta, Reg 12));
          Instr (Bin (FMULT, S, Reg rta, Reg rta, Reg 10));
          Instr (Bin (FADD, S, Reg rta, Reg rta, Reg 13));
          Instr (Bin (FMULT, S, Reg rta, Reg rta, Reg 10));
          Instr (Bin (FADD, S, Reg rta, Reg rta, Reg 14));
          Instr (Bin (FMULT, S, Reg rta, Reg rta, Reg 10));
          Instr (Bin (FADD, S, Reg rta, Reg rta, Reg 15));
          Instr Halt;
        ]
  in
  Cpu.run cpu ~at:(Cpu.label_addr image "GO");
  let setup = Cpu.create () in
  let image2 =
    Cpu.load setup Asm.[ Label "S"; Instr (Mov (Reg 10, f 2.0)); Instr Halt ]
  in
  ignore image2;
  (* measure only the kernel *)
  Cpu.reset_stats cpu;
  Cpu.run cpu ~at:(Cpu.label_addr image "KERNEL");
  cpu.Cpu.stats.Cpu.cycles

let () =
  print_endline "== Horner evaluation of a degree-4 polynomial ==";
  let call = "(horner 2.0 1.0 -3.0 0.5 4.0 -1.0)" in
  let call_g = "(horner-g 2.0 1.0 -3.0 0.5 4.0 -1.0)" in

  let c1 = C.create () in
  let declared, v1 = cycles_of c1 declared_horner call in
  let c2 = C.create () in
  let generic, v2 = cycles_of c2 generic_horner call_g in
  let ideal = ideal_horner_cycles () in
  Printf.printf "  result (declared): %s   result (generic): %s\n" v1 v2;
  Printf.printf "  %-34s %8s\n" "variant" "cycles";
  Printf.printf "  %-34s %8d\n" "ideal hand assembly (FORTRAN-ish)" ideal;
  Printf.printf "  %-34s %8d   (%.1fx ideal; includes call+frame+boxing)" "compiled, declared floats" declared
    (float_of_int declared /. float_of_int ideal);
  print_newline ();
  Printf.printf "  %-34s %8d   (%.1fx declared)\n" "compiled, no declarations" generic
    (float_of_int generic /. float_of_int declared);

  print_endline "\n== dot product, 64 elements ==";
  let build_vec = "(defun build (n acc) (if (zerop n) acc (build (1- n) (cons 1.5 acc))))" in
  let dot =
    "(defun dot (xs ys acc)\n\
    \  (declare (single-float acc))\n\
    \  (if (null xs) acc\n\
    \      (dot (cdr xs) (cdr ys) (+$f acc (*$f (car xs) (car ys))))))"
  in
  let c3 = C.create () in
  ignore (C.eval_string c3 build_vec);
  ignore (C.eval_string c3 dot);
  ignore (C.eval_string c3 "(defvar *xs* (build 64 ()))");
  ignore (C.eval_string c3 "(defvar *ys* (build 64 ()))");
  ignore (C.eval_string c3 "(dot *xs* *ys* 0.0)");
  Cpu.reset_stats c3.C.rt.Rt.cpu;
  let r = C.eval_string c3 "(dot *xs* *ys* 0.0)" in
  Printf.printf "  (dot *xs* *ys* 0.0) => %s in %d cycles (%d heap words allocated)\n"
    (C.print_value c3 r) c3.C.rt.Rt.cpu.Cpu.stats.Cpu.cycles
    (S1_runtime.Heap.stats c3.C.rt.Rt.heap).S1_runtime.Heap.words_allocated;

  (* the S-1's vector hardware, for contrast (paper §3) *)
  let cpu = Cpu.create () in
  let mem = cpu.Cpu.mem in
  let base1 = Mem.alloc_static mem 64 and base2 = Mem.alloc_static mem 64 in
  for i = 0 to 63 do
    Mem.write mem (base1 + i) (F36.encode_single 1.5);
    Mem.write mem (base2 + i) (F36.encode_single 1.5)
  done;
  let image =
    Cpu.load cpu
      Asm.[ Label "GO"; Instr (Isa.Vdot (Isa.Reg 0, Isa.Imm base1, Isa.Imm base2, Isa.Imm 64));
            Instr Isa.Halt ]
  in
  Cpu.run cpu ~at:(Cpu.label_addr image "GO");
  Printf.printf "  VDOT hardware instruction: %g in %d cycles\n"
    (F36.decode_single (Cpu.get_reg cpu 0))
    cpu.Cpu.stats.Cpu.cycles
