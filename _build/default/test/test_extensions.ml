(* Tests for the two extension phases the paper deferred: the peephole
   optimizer (§4.5: branch tensioning) and common-subexpression
   elimination (§4.3), plus the Gabriel-style benchmark programs used by
   the bench harness (Richard Gabriel being an author, his benchmark
   suite is the natural workload). *)

module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader
module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Isa = S1_machine.Isa
module Asm = S1_machine.Asm
module Cpu = S1_machine.Cpu
module Peephole = S1_codegen.Peephole
module Cse = S1_transform.Cse
open S1_ir

(* Peephole ----------------------------------------------------------------- *)

let instr_count prog =
  List.length (List.filter (function Asm.Instr _ -> true | _ -> false) prog)

let test_peephole_tension () =
  let open Isa in
  (* a conditional jump to an unconditional jump chain *)
  let prog =
    Asm.
      [
        Label "START";
        Instr (Jmpz (EQ, Reg 0, L "HOP1"));
        Instr (Mov (Reg 1, Imm 1));
        Instr Halt;
        Label "HOP1";
        Instr (Jmpa (L "HOP2"));
        Label "HOP2";
        Instr (Jmpa (L "FINAL"));
        Label "FINAL";
        Instr (Mov (Reg 1, Imm 2));
        Instr Halt;
      ]
  in
  let prog', stats = Peephole.run prog in
  Alcotest.(check bool) "tensioned some jumps" true (stats.Peephole.tensioned > 0);
  (* the conditional now goes straight to FINAL *)
  let tensioned =
    List.exists
      (function Asm.Instr (Jmpz (EQ, Reg 0, L "FINAL")) -> true | _ -> false)
      prog'
  in
  Alcotest.(check bool) "retargeted to the final destination" true tensioned;
  (* semantics preserved on the machine *)
  let run p r0 =
    let cpu = Cpu.create () in
    let image = Cpu.load cpu p in
    Cpu.set_reg cpu 0 r0;
    Cpu.run cpu ~at:(Cpu.label_addr image "START");
    Cpu.get_reg cpu 1
  in
  Alcotest.(check int) "taken path agrees" (run prog 0) (run prog' 0);
  Alcotest.(check int) "untaken path agrees" (run prog 1) (run prog' 1)

let test_peephole_jump_to_next () =
  let open Isa in
  let prog =
    Asm.[ Label "START"; Instr (Jmpa (L "NEXT")); Label "NEXT"; Instr Halt ]
  in
  let prog', stats = Peephole.run prog in
  Alcotest.(check int) "jump removed" 1 stats.Peephole.jumps_removed;
  Alcotest.(check int) "one instruction left" 1 (instr_count prog')

let test_peephole_unreachable () =
  let open Isa in
  let prog =
    Asm.
      [
        Label "START";
        Instr (Jmpa (L "OUT"));
        Instr (Mov (Reg 0, Imm 9)) (* dead *);
        Instr (Mov (Reg 0, Imm 10)) (* dead *);
        Label "OUT";
        Instr Halt;
      ]
  in
  let prog', stats = Peephole.run prog in
  Alcotest.(check int) "two dead instructions dropped" 2 stats.Peephole.unreachable_removed;
  (* a second round then removes the now-redundant jump itself *)
  Alcotest.(check int) "jump also removed" 1 stats.Peephole.jumps_removed;
  Alcotest.(check int) "only the halt remains" 1 (instr_count prog')

let test_peephole_preserves_semantics () =
  (* compile a real function both ways and compare results + size *)
  let src =
    "(defun grade (n)\n\
    \  (cond ((< n 10) 'low) ((< n 100) (if (< n 50) 'mid-low 'mid-high)) (t 'high)))"
  in
  let run options input =
    let c = C.create ~options () in
    ignore (C.eval_string c src);
    C.print_value c (C.eval_string c (Printf.sprintf "(grade %d)" input))
  in
  let base = S1_codegen.Gen.default_options in
  let peep = { base with S1_codegen.Gen.peephole = true } in
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "grade %d agrees" n)
        (run base n) (run peep n))
    [ 5; 10; 49; 50; 99; 100; 1000 ];
  (* and the peepholed version is no larger *)
  let size options =
    let c = C.create ~options () in
    let l, _ = C.listing_of c (Reader.parse_one src) in
    List.length (String.split_on_char '\n' l)
  in
  Alcotest.(check bool) "not larger" true (size peep <= size base)

(* CSE -------------------------------------------------------------------------- *)

let test_cse_basic () =
  let n =
    S1_frontend.Convert.expression
      (Reader.parse_one "((lambda (a b) (+ (* a b) (* a b))) 3 4)")
  in
  let eliminated = Cse.run n in
  Alcotest.(check int) "one elimination" 1 eliminated;
  let text = Backtrans.to_string n in
  Alcotest.(check bool) "binds a CSE variable" true
    (try ignore (Str.search_forward (Str.regexp "CSE-[0-9]+") text 0); true
     with Not_found -> false)

let test_cse_respects_effects () =
  (* (f) is not timeless: must not be eliminated *)
  let n =
    S1_frontend.Convert.expression (Reader.parse_one "(+ (f) (f))")
  in
  Alcotest.(check int) "no elimination of effectful calls" 0 (Cse.run n);
  (* reads of an assigned variable must not be merged across the setq *)
  let n2 =
    S1_frontend.Convert.expression
      (Reader.parse_one
         "((lambda (x) (+ (* x 7) (progn (setq x 2) (* x 7)))) 1)")
  in
  Alcotest.(check int) "no elimination across setq" 0 (Cse.run n2)

let test_cse_end_to_end () =
  let src =
    "(defun norm2 (a b) (+ (* a a) (* b b) (* a a) (* b b)))"
  in
  let run cse =
    let c = C.create ~cse () in
    ignore (C.eval_string c src);
    let m = C.eval_string c "(norm2 3 4)" in
    (C.print_value c m, c)
  in
  let r1, _ = run false in
  let r2, c2 = run true in
  Alcotest.(check string) "same value" r1 r2;
  Alcotest.(check string) "norm2 value" "50" r2;
  (* with CSE the multiplications are shared: fewer generic-mul services *)
  let services cse =
    let c = C.create ~cse () in
    ignore (C.eval_string c src);
    ignore (C.eval_string c "(norm2 3 4)");
    Cpu.reset_stats c.C.rt.Rt.cpu;
    ignore (C.eval_string c "(norm2 3 4)");
    c.C.rt.Rt.cpu.Cpu.stats.Cpu.svcs
  in
  ignore c2;
  Alcotest.(check bool) "fewer arithmetic services with CSE" true
    (services true < services false)

let test_cse_no_thrash_with_optimizer () =
  (* run the full pipeline with CSE enabled: the optimizer must not
     substitute the CSE binding away again (the paper's §4.3 worry) *)
  let c = C.create ~cse:true () in
  c.C.keep_transcript <- true;
  let listing, ts =
    C.listing_of c (Reader.parse_one "(defun f (a b) (list (* a b) (* a b)))")
  in
  ignore listing;
  let rules = S1_transform.Transcript.rules_fired ts in
  Alcotest.(check bool) "cse fired" true
    (List.mem "COMMON-SUBEXPRESSION-ELIMINATION" rules);
  Alcotest.(check string) "still correct" "(12 12)"
    (C.print_value c (C.eval_string c "(f 3 4)"))

(* DEFMACRO ----------------------------------------------------------------- *)

let test_defmacro_basic () =
  let c = C.create () in
  ignore (C.eval_string c "(defmacro square (x) (list '* x x))");
  Alcotest.(check string) "simple macro" "49"
    (C.print_value c (C.eval_string c "(square 7)"));
  (* the macro receives forms, not values: (square (+ 1 2)) duplicates *)
  Alcotest.(check string) "form duplication semantics" "9"
    (C.print_value c (C.eval_string c "(square (+ 1 2))"))

let test_defmacro_backquote () =
  let c = C.create () in
  ignore
    (C.eval_string c
       "(defmacro my-unless (test &rest body) `(if ,test () (progn ,@body)))");
  Alcotest.(check string) "backquoted macro" "OK"
    (C.print_value c (C.eval_string c "(my-unless (< 2 1) 'ok)"));
  Alcotest.(check string) "other branch" "()"
    (C.print_value c (C.eval_string c "(my-unless (< 1 2) 'ok)"))

let test_defmacro_while_loop () =
  let c = C.create () in
  ignore
    (C.eval_string c
       "(defmacro while (test &rest body)
       \  `(prog () loop (if (not ,test) (return ())) (progn ,@body) (go loop)))");
  Alcotest.(check string) "macro-built loop" "10"
    (C.print_value c
       (C.eval_string c
          "(let ((i 0) (acc 0)) (while (< i 5) (setq acc (+ acc i)) (setq i (1+ i))) acc)"))

let test_defmacro_uses_functions () =
  (* the expander is ordinary compiled Lisp and may call helper functions *)
  let c = C.create () in
  ignore (C.eval_string c "(defun wrap-progn (forms) (cons 'progn forms))");
  ignore (C.eval_string c "(defmacro do-all (&rest forms) (wrap-progn forms))");
  Alcotest.(check string) "helper-driven expander" "3"
    (C.print_value c (C.eval_string c "(do-all 1 2 3)"))

let test_defmacro_inside_defun () =
  let c = C.create () in
  ignore (C.eval_string c "(defmacro twice (e) `(+ ,e ,e))");
  ignore (C.eval_string c "(defun f (n) (twice (* n 10)))");
  Alcotest.(check string) "macro inside defun" "60"
    (C.print_value c (C.eval_string c "(f 3)"))

(* Differential: CSE + peephole preserve semantics on random programs. ------- *)

let gen_program =
  let open QCheck2.Gen in
  let var_names = [ "V1"; "V2" ] in
  let rec expr n =
    if n = 0 then
      oneof
        [ map (fun i -> Sexp.Int i) (int_range (-20) 20);
          map (fun v -> Sexp.Sym v) (oneofl var_names) ]
    else
      oneof
        [
          map (fun i -> Sexp.Int i) (int_range (-20) 20);
          map (fun v -> Sexp.Sym v) (oneofl var_names);
          map2
            (fun op (a, b) -> Sexp.List [ Sexp.Sym op; a; b ])
            (oneofl [ "+"; "-"; "*"; "MAX" ])
            (pair (expr (n / 2)) (expr (n / 2)));
          map3
            (fun p a b ->
              Sexp.List
                [ Sexp.Sym "IF"; Sexp.List [ Sexp.Sym "<"; p; Sexp.Int 0 ]; a; b ])
            (expr (n / 3)) (expr (n / 2)) (expr (n / 2));
        ]
  in
  sized (fun n ->
      map2
        (fun inits body ->
          Sexp.List
            [ Sexp.Sym "LET";
              Sexp.List (List.map2 (fun v e -> Sexp.List [ Sexp.Sym v; e ]) var_names inits);
              body ])
        (flatten_l
           [ map (fun i -> Sexp.Int i) (int_range (-20) 20);
             map (fun i -> Sexp.Int i) (int_range (-20) 20) ])
        (expr (min n 12)))

let prop_extensions_preserve_semantics =
  QCheck2.Test.make ~count:100 ~name:"CSE + peephole preserve semantics" gen_program
    (fun prog ->
      let c1 = C.create () in
      let v1 = C.eval c1 prog in
      let options = { S1_codegen.Gen.default_options with S1_codegen.Gen.peephole = true } in
      let c2 = C.create ~options ~cse:true () in
      let v2 = C.eval c2 prog in
      Rt.value_to_sexp c1.C.rt v1 = Rt.value_to_sexp c2.C.rt v2)

(* Gabriel-style benchmark programs -------------------------------------------- *)

let tak = "(defun tak (x y z)\n\
          \  (if (not (< y x)) z\n\
          \      (tak (tak (1- x) y z) (tak (1- y) z x) (tak (1- z) x y))))"

let ctak =
  "(defun ctak (x y z) (catch 'ctak (ctak-aux x y z)))\n\
   (defun ctak-aux (x y z)\n\
  \  (if (not (< y x)) (throw 'ctak z)\n\
  \      (ctak-aux (catch 'ctak (ctak-aux (1- x) y z))\n\
  \                (catch 'ctak (ctak-aux (1- y) z x))\n\
  \                (catch 'ctak (ctak-aux (1- z) x y)))))"

let stak =
  "(defvar *x* 0) (defvar *y* 0) (defvar *z* 0)\n\
   (defun stak (x y z)\n\
  \  (let ((*x* x) (*y* y) (*z* z))\n\
  \    (declare (special *x* *y* *z*))\n\
  \    (stak-aux)))\n\
   (defun stak-aux ()\n\
  \  (if (not (< *y* *x*)) *z*\n\
  \      (let ((x (let ((*x* (1- *x*)) (*y* *y*) (*z* *z*))\n\
  \                 (declare (special *x* *y* *z*)) (stak-aux)))\n\
  \            (y (let ((*x* (1- *y*)) (*y* *z*) (*z* *x*))\n\
  \                 (declare (special *x* *y* *z*)) (stak-aux)))\n\
  \            (z (let ((*x* (1- *z*)) (*y* *x*) (*z* *y*))\n\
  \                 (declare (special *x* *y* *z*)) (stak-aux))))\n\
  \        (let ((*x* x) (*y* y) (*z* z))\n\
  \          (declare (special *x* *y* *z*)) (stak-aux)))))"

let test_gabriel_tak () =
  let c = C.create () in
  ignore (C.eval_string c tak);
  Alcotest.(check string) "(tak 18 12 6)" "7"
    (C.print_value c (C.eval_string c "(tak 18 12 6)"));
  (* agrees with the interpreter *)
  let c2 = C.create () in
  ignore (S1_interp.Interp.eval_string c2.C.it tak);
  Alcotest.(check string) "interpreted agrees" "7"
    (C.print_value c2 (S1_interp.Interp.eval_string c2.C.it "(tak 18 12 6)"))

let test_gabriel_ctak () =
  let c = C.create () in
  ignore (C.eval_string c ctak);
  Alcotest.(check string) "(ctak 12 8 4)" "5"
    (C.print_value c (C.eval_string c "(ctak 12 8 4)"))

let test_gabriel_stak () =
  let c = C.create () in
  ignore (C.eval_string c stak);
  Alcotest.(check string) "(stak 12 8 4)" "5"
    (C.print_value c (C.eval_string c "(stak 12 8 4)"))

let () =
  Alcotest.run "extensions"
    [
      ( "peephole",
        [
          Alcotest.test_case "branch tensioning" `Quick test_peephole_tension;
          Alcotest.test_case "jump to next" `Quick test_peephole_jump_to_next;
          Alcotest.test_case "unreachable code" `Quick test_peephole_unreachable;
          Alcotest.test_case "semantics preserved" `Quick test_peephole_preserves_semantics;
        ] );
      ( "cse",
        [
          Alcotest.test_case "basic elimination" `Quick test_cse_basic;
          Alcotest.test_case "respects effects" `Quick test_cse_respects_effects;
          Alcotest.test_case "end to end" `Quick test_cse_end_to_end;
          Alcotest.test_case "no thrash with optimizer" `Quick test_cse_no_thrash_with_optimizer;
        ] );
      ( "defmacro",
        [
          Alcotest.test_case "basic" `Quick test_defmacro_basic;
          Alcotest.test_case "backquote" `Quick test_defmacro_backquote;
          Alcotest.test_case "while loop" `Quick test_defmacro_while_loop;
          Alcotest.test_case "expander calls functions" `Quick test_defmacro_uses_functions;
          Alcotest.test_case "macro inside defun" `Quick test_defmacro_inside_defun;
        ] );
      ( "gabriel",
        [
          Alcotest.test_case "TAK" `Quick test_gabriel_tak;
          Alcotest.test_case "CTAK" `Quick test_gabriel_ctak;
          Alcotest.test_case "STAK" `Quick test_gabriel_stak;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_extensions_preserve_semantics ]);
    ]
