test/test_interp.ml: Alcotest List Obj Option Printf QCheck2 QCheck_alcotest Rt S1_frontend S1_interp S1_runtime S1_sexp
