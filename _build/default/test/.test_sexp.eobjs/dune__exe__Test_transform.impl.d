test/test_transform.ml: Alcotest Backtrans Convert List QCheck2 QCheck_alcotest Rules S1_frontend S1_interp S1_ir S1_runtime S1_sexp S1_transform Simplify Str String Transcript
