test/test_extensions.ml: Alcotest Backtrans List Printf QCheck2 QCheck_alcotest S1_codegen S1_core S1_frontend S1_interp S1_ir S1_machine S1_runtime S1_sexp S1_transform Str String
