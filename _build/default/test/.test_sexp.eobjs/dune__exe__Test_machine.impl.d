test/test_machine.ml: Alcotest Asm Cpu Float Float36 Isa List Mem Printf QCheck2 QCheck_alcotest S1_machine String Tags Word
