test/test_sexp.ml: Alcotest Float List QCheck2 QCheck_alcotest Reader S1_sexp Sexp String
