test/test_builtins.ml: Alcotest List S1_core S1_interp S1_runtime String
