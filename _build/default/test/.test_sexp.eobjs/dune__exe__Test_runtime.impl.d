test/test_runtime.ml: Alcotest Bignum Builtins Heap List Numerics Obj Option QCheck2 QCheck_alcotest Rt S1_machine S1_runtime S1_sexp String
