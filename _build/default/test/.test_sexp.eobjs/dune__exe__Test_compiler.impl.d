test/test_compiler.ml: Alcotest List Printf QCheck2 QCheck_alcotest S1_codegen S1_core S1_interp S1_machine S1_runtime S1_sexp S1_transform
