test/test_frontend.ml: Alcotest Backtrans Convert Freshen List Macroexp Node Option Prims S1_frontend S1_ir S1_sexp
