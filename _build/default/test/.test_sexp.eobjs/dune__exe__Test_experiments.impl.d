test/test_experiments.ml: Alcotest Backtrans Float List Node Printf S1_codegen S1_core S1_frontend S1_interp S1_ir S1_machine S1_runtime S1_sexp S1_transform Str String
