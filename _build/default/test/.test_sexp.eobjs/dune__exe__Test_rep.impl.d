test/test_rep.ml: Alcotest List Node Printf S1_analysis S1_frontend S1_ir S1_rep S1_sexp S1_tnbind
