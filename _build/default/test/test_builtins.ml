(* Comprehensive coverage of the standard library: every builtin
   evaluated through the compiler AND the interpreter (same world), with
   printed results compared against expectations.  Since the natives are
   shared, this primarily checks the calling convention, arity checking,
   and argument/result plumbing from both directions. *)

module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module I = S1_interp.Interp

let cases =
  [
    (* cons cells and lists *)
    ("(cons 1 2)", "(1 . 2)");
    ("(car '(1 2 3))", "1");
    ("(cdr '(1 2 3))", "(2 3)");
    ("(caar '((1 2) 3))", "1");
    ("(cadr '(1 2 3))", "2");
    ("(cdar '((1 2) 3))", "(2)");
    ("(cddr '(1 2 3))", "(3)");
    ("(caddr '(1 2 3))", "3");
    ("(list 1 'a \"s\")", "(1 A \"s\")");
    ("(list)", "()");
    ("(list* 1 2 '(3 4))", "(1 2 3 4)");
    ("(list* 1)", "1");
    ("(append '(1 2) '(3) '(4 5))", "(1 2 3 4 5)");
    ("(append)", "()");
    ("(append '(1) ())", "(1)");
    ("(reverse '(1 2 3))", "(3 2 1)");
    ("(reverse ())", "()");
    ("(length '(a b c d))", "4");
    ("(length ())", "0");
    ("(nth 0 '(a b c))", "A");
    ("(nth 2 '(a b c))", "C");
    ("(nth 9 '(a b c))", "()");
    ("(nthcdr 1 '(a b c))", "(B C)");
    ("(last '(1 2 3))", "(3)");
    ("(assoc 'b '((a . 1) (b . 2)))", "(B . 2)");
    ("(assoc 'z '((a . 1)))", "()");
    ("(assq 'b '((a . 1) (b . 2)))", "(B . 2)");
    ("(member 2 '(1 2 3))", "(2 3)");
    ("(member 9 '(1 2 3))", "()");
    ("(memq 'b '(a b c))", "(B C)");
    ("(let ((c (cons 1 2))) (rplaca c 9) c)", "(9 . 2)");
    ("(let ((c (cons 1 2))) (rplacd c 9) c)", "(1 . 9)");
    (* more list utilities *)
    ("(copy-list '(1 2 3))", "(1 2 3)");
    ("(let ((x '(1 2))) (eq x (copy-list x)))", "()");
    ("(equal (copy-list '(1 2)) '(1 2))", "T");
    ("(nconc (list 1 2) (list 3))", "(1 2 3)");
    ("(nconc () (list 1))", "(1)");
    ("(nconc)", "()");
    ("(remove 2 '(1 2 3 2 4))", "(1 3 4)");
    ("(remove 9 '(1 2))", "(1 2)");
    ("(count 2 '(1 2 2 3 2))", "3");
    ("(position 'c '(a b c d))", "2");
    ("(position 'z '(a b))", "()");
    ("(subst 'x 'b '(a (b c) b))", "(A (X C) X)");
    ("(sort '(3 1 4 1 5 9 2 6) (function <))", "(1 1 2 3 4 5 6 9)");
    ("(sort () (function <))", "()");
    ( "(sort '(\"pear\" \"fig\") (lambda (a b) (< (string-length a) (string-length b))))",
      "(\"fig\" \"pear\")" );
    (* predicates *)
    ("(null ())", "T");
    ("(null 1)", "()");
    ("(not t)", "()");
    ("(atom 1)", "T");
    ("(atom '(1))", "()");
    ("(consp '(1))", "T");
    ("(consp ())", "()");
    ("(listp ())", "T");
    ("(listp '(1))", "T");
    ("(listp 1)", "()");
    ("(symbolp 'a)", "T");
    ("(symbolp 1)", "()");
    ("(numberp 3/4)", "T");
    ("(numberp 'a)", "()");
    ("(integerp 5)", "T");
    ("(integerp 5.0)", "()");
    ("(floatp 5.0)", "T");
    ("(floatp 5)", "()");
    ("(rationalp 1/2)", "T");
    ("(rationalp 1.5)", "()");
    ("(complexp (complex 1 2))", "T");
    ("(stringp \"x\")", "T");
    ("(vectorp (vector 1))", "T");
    ("(functionp (function cons))", "T");
    ("(functionp 3)", "()");
    ("(eq 'a 'a)", "T");
    ("(eq '(1) '(1))", "()");
    ("(eql 1.5 1.5)", "T");
    ("(eql 1 1.0)", "()");
    ("(equal '(1 (2)) '(1 (2)))", "T");
    ("(equal \"ab\" \"ab\")", "T");
    ("(equal \"ab\" \"ac\")", "()");
    (* arithmetic *)
    ("(+)", "0");
    ("(+ 1 2 3 4)", "10");
    ("(*)", "1");
    ("(* 2 3 4)", "24");
    ("(- 10 3 2)", "5");
    ("(- 5)", "-5");
    ("(/ 6 3)", "2");
    ("(/ 1 4)", "1/4");
    ("(/ 2)", "1/2");
    ("(1+ 9)", "10");
    ("(1- 0)", "-1");
    ("(< 1 2 3)", "T");
    ("(< 1 3 2)", "()");
    ("(<= 1 1 2)", "T");
    ("(> 3 2 1)", "T");
    ("(>= 2 2)", "T");
    ("(= 2 2.0)", "T");
    ("(/= 1 2)", "T");
    ("(max 3 1 4 1 5)", "5");
    ("(min 3 1 4)", "1");
    ("(abs -7)", "7");
    ("(abs 7)", "7");
    ("(abs -2/3)", "2/3");
    ("(floor 7 2)", "3");
    ("(floor -7 2)", "-4");
    ("(ceiling 7 2)", "4");
    ("(truncate -7 2)", "-3");
    ("(round 5 2)", "2");
    ("(round 7 2)", "4");
    ("(floor 3.7)", "3");
    ("(mod 7 3)", "1");
    ("(mod -7 3)", "2");
    ("(rem -7 3)", "-1");
    ("(gcd 12 18)", "6");
    ("(gcd)", "0");
    ("(zerop 0)", "T");
    ("(zerop 0.0)", "T");
    ("(zerop 1)", "()");
    ("(plusp 2)", "T");
    ("(minusp -2)", "T");
    ("(oddp 3)", "T");
    ("(evenp 4)", "T");
    ("(sqrt 16)", "4.0");
    ("(expt 2 16)", "65536");
    ("(expt 2 -2)", "1/4");
    ("(expt 2 100)", "1267650600228229401496703205376");
    ("(float 3)", "3.0");
    ("(numerator 3/4)", "3");
    ("(denominator 3/4)", "4");
    ("(numerator 5)", "5");
    ("(denominator 5)", "1");
    ("(realpart (complex 1 2))", "1");
    ("(imagpart (complex 1 2))", "2");
    ("(realpart 7)", "7");
    ("(imagpart 7)", "0");
    (* exact rational arithmetic *)
    ("(+ 1/3 1/6)", "1/2");
    ("(* 2/3 3/4)", "1/2");
    ("(- 1/2 1/3)", "1/6");
    ("(+ 1/2 1/2)", "1");
    (* bignums *)
    ("(* 99999999999 99999999999)", "9999999999800000000001");
    ("(+ 1152921504606846975 1)", "1152921504606846976");
    (* type-specific operators *)
    ("(+$f 1.5 2.25)", "3.75");
    ("(-$f 5.0 1.5)", "3.5");
    ("(-$f 2.0)", "-2.0");
    ("(*$f 3.0 0.5)", "1.5");
    ("(/$f 7.0 2.0)", "3.5");
    ("(max$f 1.0 2.0)", "2.0");
    ("(min$f 1.0 2.0)", "1.0");
    ("(sqrt$f 2.25)", "1.5");
    ("(sinc$f 0.25)", "1.0");
    ("(cosc$f 0.5)", "-1.0");
    ("(<$f 1.0 2.0)", "T");
    ("(=$f 2.0 2.0)", "T");
    ("(+& 2 3)", "5");
    ("(-& 2 3)", "-1");
    ("(*& 4 5)", "20");
    ("(<& 1 2)", "T");
    ("(=& 2 2)", "T");
    (* strings *)
    ("(string= \"ab\" \"ab\")", "T");
    ("(string-append \"foo\" \"-\" \"bar\")", "\"foo-bar\"");
    ("(string-length \"hello\")", "5");
    ("(symbol-name 'foo)", "\"FOO\"");
    (* vectors *)
    ("(vector-length (make-vector 5))", "5");
    ("(aref (vector 'a 'b 'c) 1)", "B");
    ("(let ((v (make-vector 3 0))) (aset v 1 'x) (aref v 1))", "X");
    (* control *)
    ("(funcall (function +) 1 2)", "3");
    ("(apply (function +) '(1 2 3))", "6");
    ("(apply (function +) 1 2 '(3))", "6");
    ("(mapcar (function 1+) '(1 2 3))", "(2 3 4)");
    ("(mapc (function 1+) '(1 2))", "(1 2)");
    ("(reduce (function +) '(1 2 3 4))", "10");
    ("(reduce (function cons) '(1 2 3) ())", "(((() . 1) . 2) . 3)");
    ("(identity 'x)", "X");
    (* plists and symbols *)
    ("(progn (putprop 'psym 42 'weight) (get 'psym 'weight))", "42");
    ("(get 'psym2 'nothing)", "()");
  ]

let test_compiled () =
  let c = C.create () in
  List.iter
    (fun (src, expected) ->
      match C.eval_string c src with
      | w -> Alcotest.(check string) src expected (C.print_value c w)
      | exception Rt.Lisp_error m -> Alcotest.failf "%s signalled: %s" src m)
    cases

let test_interpreted () =
  let c = C.create () in
  List.iter
    (fun (src, expected) ->
      match I.eval_string c.C.it src with
      | w -> Alcotest.(check string) src expected (C.print_value c w)
      | exception Rt.Lisp_error m -> Alcotest.failf "%s signalled: %s" src m)
    cases

(* Error paths: every one of these must signal a Lisp error, not crash. *)
let error_cases =
  [
    "(car 5)";
    "(cdr \"x\")";
    "(+ 'a 1)";
    "(/ 1 0)";
    "(/ 1/2 0)";
    "(oddp 1.5)";
    "(aref (vector 1) 5)";
    "(aref (vector 1) -1)";
    "(funcall 42)";
    "(undefined-function-xyz 1)";
    "(throw 'nowhere 1)";
    "(error \"boom\")";
    "(rplaca () 1)";
  ]

let test_errors_compiled () =
  List.iter
    (fun src ->
      let c = C.create () in
      match C.eval_string c src with
      | exception Rt.Lisp_error _ -> ()
      | w -> Alcotest.failf "%s returned %s instead of signalling" src (C.print_value c w))
    error_cases

(* (+$f 1 2) with non-float variables signals through the strict natives
   when compiled via the generic path, and through strict_single when
   interpreted; with literal integers the compiled code converts at
   compile time (the type-specific operators are unchecked by
   definition).  Pin both behaviours. *)
let test_type_specific_unchecked_literals () =
  let c = C.create () in
  Alcotest.(check string) "literals convert" "3.0"
    (C.print_value c (C.eval_string c "(+$f 1 2)"));
  Alcotest.(check string) "fixnum op literals convert" "3"
    (C.print_value c (C.eval_string c "(+& 1.0 2.0)"));
  (match I.eval_string c.C.it "(+$f 1 2)" with
  | exception Rt.Lisp_error _ -> ()
  | w -> Alcotest.failf "interpreter returned %s" (C.print_value c w));
  match I.eval_string c.C.it "(+& 1.0 2.0)" with
  | exception Rt.Lisp_error _ -> ()
  | w -> Alcotest.failf "interpreter returned %s" (C.print_value c w)

let test_errors_interpreted () =
  List.iter
    (fun src ->
      let c = C.create () in
      match I.eval_string c.C.it src with
      | exception Rt.Lisp_error _ -> ()
      | w -> Alcotest.failf "%s returned %s instead of signalling" src (C.print_value c w))
    error_cases

(* Division of a float by integer zero: generic div on floats gives
   inf in IEEE style rather than signalling?  Pin the actual behaviour so
   a change is noticed: we signal only for exact (rational) division. *)
let test_float_division_by_zero () =
  let c = C.create () in
  match C.eval_string c "(/ 1.0 0.0)" with
  | w ->
      let s = C.print_value c w in
      Alcotest.(check bool) "float/0.0 is an infinity" true
        (String.length s > 0 && (s.[0] = 'i' || s = "inf" || String.length s > 2))
  | exception Rt.Lisp_error _ -> ()

let test_output_functions () =
  let c = C.create () in
  ignore (C.eval_string c "(progn (prin1 \"s\") (princ \" \") (princ 'sym) (terpri) (princ 42))");
  Alcotest.(check string) "output stream" "\"s\" SYM\n42" (Rt.output c.C.rt)

let () =
  Alcotest.run "builtins"
    [
      ( "library",
        [
          Alcotest.test_case "compiled" `Quick test_compiled;
          Alcotest.test_case "interpreted" `Quick test_interpreted;
        ] );
      ( "errors",
        [
          Alcotest.test_case "compiled error paths" `Quick test_errors_compiled;
          Alcotest.test_case "unchecked type-specific literals" `Quick
            test_type_specific_unchecked_literals;
          Alcotest.test_case "interpreted error paths" `Quick test_errors_interpreted;
          Alcotest.test_case "float division by zero" `Quick test_float_division_by_zero;
          Alcotest.test_case "output functions" `Quick test_output_functions;
        ] );
    ]
