(* Tests for macro expansion, conversion to the internal tree, and
   back-translation. *)

module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader
open S1_frontend
open S1_ir

let parse = Reader.parse_one
let sexp_t = Alcotest.testable Sexp.pp Sexp.equal
let check_sexp = Alcotest.check sexp_t

let expand_str s = Macroexp.expand (parse s)

let test_expand_let () =
  check_sexp "let is a lambda call"
    (parse "((lambda (x y) (+ x y)) 1 2)")
    (expand_str "(let ((x 1) (y 2)) (+ x y))");
  check_sexp "empty-init binding"
    (parse "((lambda (x) x) ())")
    (expand_str "(let ((x)) x)");
  check_sexp "let* nests"
    (parse "((lambda (x) ((lambda (y) y) x)) 1)")
    (expand_str "(let* ((x 1) (y x)) y)")

let test_expand_cond () =
  check_sexp "cond to nested ifs"
    (parse "(if a 1 (if b 2 3))")
    (expand_str "(cond (a 1) (b 2) (t 3))");
  check_sexp "cond without default"
    (parse "(if a 1 ())")
    (expand_str "(cond (a 1))");
  check_sexp "multi-form body gets progn"
    (parse "(if a (progn 1 2) ())")
    (expand_str "(cond (a 1 2))")

let test_expand_and_or () =
  check_sexp "and" (parse "(if a (if b c ()) ())") (expand_str "(and a b c)");
  check_sexp "empty and" (parse "t") (expand_str "(and)");
  check_sexp "empty or" (parse "()") (expand_str "(or)");
  (* pure operands use the simple IF form *)
  check_sexp "or of variables" (parse "(if a a b)") (expand_str "(or a b)");
  (* effectful operands get the paper's lambda trick *)
  (match expand_str "(or (f) (g))" with
  | Sexp.List [ Sexp.List [ Sexp.Sym "LAMBDA"; Sexp.List [ Sexp.Sym v; Sexp.Sym fn ]; body ]; _; _ ]
    ->
      check_sexp "if inside"
        (Sexp.List [ Sexp.Sym "IF"; Sexp.Sym v; Sexp.Sym v; Sexp.List [ Sexp.Sym fn ] ])
        body
  | other -> Alcotest.failf "unexpected or-expansion %a" Sexp.pp other)

let test_expand_when_unless_setq () =
  check_sexp "when" (parse "(if p x ())") (expand_str "(when p x)");
  check_sexp "unless" (parse "(if p () x)") (expand_str "(unless p x)");
  check_sexp "multi setq"
    (parse "(progn (setq a 1) (setq b 2))")
    (expand_str "(setq a 1 b 2)")

let test_expand_quasiquote () =
  check_sexp "plain template" (parse "(cons 'a (cons 'b '()))") (expand_str "`(a b)");
  check_sexp "unquote" (parse "(cons 'a (cons x '()))") (expand_str "`(a ,x)");
  check_sexp "splice" (parse "(cons 'a (append xs '()))") (expand_str "`(a ,@xs)")

let test_expand_push_incf () =
  check_sexp "push" (parse "(setq s (cons e s))") (expand_str "(push e s)");
  check_sexp "incf" (parse "(setq i (1+ i))") (expand_str "(incf i)")

(* Conversion ------------------------------------------------------------ *)

let conv s = Convert.expression (parse s)

let test_convert_roundtrip () =
  (* back-translation must reproduce the core-form program *)
  let cases =
    [
      ("(if a 1 2)", "(IF A 1 2)");
      ("(quote (a b))", "'(A B)");
      ("42", "42");
      ("((lambda (x) x) 3)", "((LAMBDA (X) X) 3)");
      ("(+ 1 2)", "(+ 1 2)");
      ("(progn 1 2)", "(PROGN 1 2)");
    ]
  in
  List.iter
    (fun (src, expect) ->
      Alcotest.(check string) src expect (Backtrans.to_string (conv src)))
    cases

let test_convert_scoping () =
  (* Two distinct X variables must be distinct records. *)
  let n = conv "((lambda (x) ((lambda (x) x) x)) 1)" in
  let vars = ref [] in
  Node.iter
    (fun nd -> match nd.Node.kind with Node.Var v -> vars := v :: !vars | _ -> ())
    n;
  (match !vars with
  | [ a; b ] -> Alcotest.(check bool) "distinct vars" false (a.Node.v_id = b.Node.v_id)
  | _ -> Alcotest.failf "expected two variable references, got %d" (List.length !vars));
  (* Free variables become special (dynamic) references. *)
  let n2 = conv "free-var" in
  match n2.Node.kind with
  | Node.Var v -> Alcotest.(check bool) "free var is special" true v.Node.v_special
  | _ -> Alcotest.fail "expected var node"

let test_convert_shared_globals () =
  (* Two references to the same free name share the var record. *)
  let n = conv "(+ *g* *g*)" in
  let vars = ref [] in
  Node.iter
    (fun nd -> match nd.Node.kind with Node.Var v -> vars := v :: !vars | _ -> ())
    n;
  match !vars with
  | [ a; b ] -> Alcotest.(check bool) "same record" true (a == b)
  | _ -> Alcotest.fail "expected two refs"

let test_convert_optionals () =
  let _, lam = Convert.defun (parse "(defun testfn (a &optional (b 3.0) (c a)) c)") in
  match lam.Node.kind with
  | Node.Lambda l ->
      (match l.Node.l_params with
      | [ pa; pb; pc ] ->
          Alcotest.(check bool) "a required" true (pa.Node.p_kind = Node.Required);
          Alcotest.(check bool) "b optional" true (pb.Node.p_kind = Node.Optional);
          Alcotest.(check bool) "c optional" true (pc.Node.p_kind = Node.Optional);
          (* c's default references parameter a *)
          (match pc.Node.p_default with
          | Some { Node.kind = Node.Var v; _ } ->
              Alcotest.(check bool) "default refs a" true (v == pa.Node.p_var)
          | _ -> Alcotest.fail "expected default referencing A")
      | _ -> Alcotest.fail "expected three params");
      Alcotest.(check bool) "toplevel strategy" true (l.Node.l_strategy = Node.Toplevel)
  | _ -> Alcotest.fail "expected lambda"

let test_convert_rest () =
  let _, lam = Convert.defun (parse "(defun f (a &rest more) more)") in
  match lam.Node.kind with
  | Node.Lambda l ->
      Alcotest.(check int) "two params" 2 (List.length l.Node.l_params);
      Alcotest.(check bool) "rest kind" true
        ((List.nth l.Node.l_params 1).Node.p_kind = Node.Rest)
  | _ -> Alcotest.fail "expected lambda"

let test_convert_declare_special () =
  let n = conv "((lambda (x) (declare (special x)) x) 1)" in
  let found = ref false in
  Node.iter
    (fun nd ->
      match nd.Node.kind with
      | Node.Lambda l ->
          List.iter (fun p -> if p.Node.p_var.Node.v_special then found := true) l.Node.l_params
      | _ -> ())
    n;
  Alcotest.(check bool) "declared special" true !found

let test_convert_declare_type () =
  let n = conv "((lambda (x) (declare (single-float x)) x) 1.0)" in
  let found = ref None in
  Node.iter
    (fun nd ->
      match nd.Node.kind with
      | Node.Lambda l -> found := (List.hd l.Node.l_params).Node.p_var.Node.v_decl
      | _ -> ())
    n;
  Alcotest.(check bool) "declared SWFLO" true (!found = Some Node.SWFLO)

let test_convert_progbody () =
  let n = conv "(prog (x) loop (setq x 1) (go loop))" in
  (* prog => call of lambda whose body is a progbody *)
  let has_pb = ref false and has_go = ref false in
  Node.iter
    (fun nd ->
      match nd.Node.kind with
      | Node.Progbody pb ->
          has_pb := true;
          Alcotest.(check bool) "has tag" true
            (List.exists (function Node.Ptag "LOOP" -> true | _ -> false) pb.Node.pb_items)
      | Node.Go "LOOP" -> has_go := true
      | _ -> ())
    n;
  Alcotest.(check bool) "progbody present" true !has_pb;
  Alcotest.(check bool) "go present" true !has_go

let test_freshen () =
  let n = conv "((lambda (x) (+ x x)) 5)" in
  let n' = Freshen.copy n in
  (* Copy must use fresh variable ids. *)
  let ids tree =
    let acc = ref [] in
    Node.iter
      (fun nd -> match nd.Node.kind with Node.Var v -> acc := v.Node.v_id :: !acc | _ -> ())
      tree;
    List.sort_uniq compare !acc
  in
  let i1 = ids n and i2 = ids n' in
  Alcotest.(check bool) "disjoint var ids" true
    (List.for_all (fun i -> not (List.mem i i2)) i1);
  (* but identical back-translations modulo renaming *)
  Alcotest.(check string) "same shape" (Backtrans.to_string n) (Backtrans.to_string n')

(* Prims ------------------------------------------------------------------- *)

let test_prims_fold () =
  let fold name args =
    match Prims.find name with
    | Some { Prims.fold = Some f; _ } -> f args
    | _ -> None
  in
  check_sexp "fold +" (Sexp.Int 6) (Option.get (fold "+" [ Sexp.Int 1; Sexp.Int 2; Sexp.Int 3 ]));
  check_sexp "fold exact /" (Sexp.Ratio (1, 3)) (Option.get (fold "/" [ Sexp.Int 1; Sexp.Int 3 ]));
  check_sexp "fold float +"
    (Sexp.Float (3.5, Sexp.Single))
    (Option.get (fold "+" [ Sexp.Float (1.5, Sexp.Single); Sexp.Int 2 ]));
  check_sexp "fold <" (Sexp.Sym "T") (Option.get (fold "<" [ Sexp.Int 1; Sexp.Int 2 ]));
  check_sexp "fold car" (Sexp.Sym "A") (Option.get (fold "CAR" [ parse "(a b)" ]));
  check_sexp "fold expt big"
    (Sexp.Big "1267650600228229401496703205376")
    (Option.get (fold "EXPT" [ Sexp.Int 2; Sexp.Int 100 ]));
  Alcotest.(check bool) "no fold on variables" true (fold "+" [ Sexp.Sym "X" ] = None);
  Alcotest.(check bool) "division by zero doesn't fold" true
    (fold "/" [ Sexp.Int 1; Sexp.Int 0 ] = None)

let test_prims_metadata () =
  let p name = Option.get (Prims.find name) in
  Alcotest.(check bool) "+ commutative" true (p "+").Prims.commutative;
  Alcotest.(check bool) "+$F associative" true (p "+$F").Prims.associative;
  Alcotest.(check bool) "rplaca impure" false (p "RPLACA").Prims.pure;
  Alcotest.(check bool) "car pure" true (p "CAR").Prims.pure;
  check_sexp "identity of *" (Sexp.Int 1) (Option.get (p "*").Prims.identity);
  Alcotest.(check bool) "+$F wants SWFLO" true ((p "+$F").Prims.arg_rep = Some Node.SWFLO);
  Alcotest.(check bool) "sin$f immutable math" true (Prims.immutable_math "SIN$F")

let () =
  Alcotest.run "frontend"
    [
      ( "macroexp",
        [
          Alcotest.test_case "let" `Quick test_expand_let;
          Alcotest.test_case "cond" `Quick test_expand_cond;
          Alcotest.test_case "and/or" `Quick test_expand_and_or;
          Alcotest.test_case "when/unless/setq" `Quick test_expand_when_unless_setq;
          Alcotest.test_case "quasiquote" `Quick test_expand_quasiquote;
          Alcotest.test_case "push/incf" `Quick test_expand_push_incf;
        ] );
      ( "convert",
        [
          Alcotest.test_case "round trip" `Quick test_convert_roundtrip;
          Alcotest.test_case "scoping" `Quick test_convert_scoping;
          Alcotest.test_case "shared globals" `Quick test_convert_shared_globals;
          Alcotest.test_case "optionals" `Quick test_convert_optionals;
          Alcotest.test_case "rest" `Quick test_convert_rest;
          Alcotest.test_case "declare special" `Quick test_convert_declare_special;
          Alcotest.test_case "declare type" `Quick test_convert_declare_type;
          Alcotest.test_case "progbody" `Quick test_convert_progbody;
          Alcotest.test_case "freshen" `Quick test_freshen;
        ] );
      ( "prims",
        [
          Alcotest.test_case "folding" `Quick test_prims_fold;
          Alcotest.test_case "metadata" `Quick test_prims_metadata;
        ] );
    ]
