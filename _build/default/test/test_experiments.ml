(* Reproductions of the paper's structural artifacts: Table 1 (phases),
   Table 2 (constructs), Table 3 (representations), Table 4 (generated
   code for testfn), the §5 short-circuit code shape (E5), the §6.1
   RT-register code (E6), and the §7 optimizer transcript (E7). *)

module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader
module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Isa = S1_machine.Isa
module Asm = S1_machine.Asm
module Cpu = S1_machine.Cpu
module Mem = S1_machine.Mem
module F36 = S1_machine.Float36
open S1_ir

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let count_sub hay needle =
  let re = Str.regexp_string needle in
  let rec go i acc =
    match Str.search_forward re hay i with
    | j -> go (j + 1) (acc + 1)
    | exception Not_found -> acc
  in
  go 0 0

(* T1: Table 1 phase structure ------------------------------------------- *)

let test_t1_phases () =
  let p = C.phases in
  Alcotest.(check int) "twelve phases" 12 (List.length p);
  let order_ok a b =
    let rec idx i = function
      | [] -> -1
      | x :: rest -> if contains x a then i else idx (i + 1) rest
    in
    let ia = idx 0 p in
    let rec idx2 i = function
      | [] -> -1
      | x :: rest -> if contains x b then i else idx2 (i + 1) rest
    in
    ia >= 0 && idx2 0 p > ia
  in
  Alcotest.(check bool) "preliminary before analysis" true
    (order_ok "Preliminary" "environment analysis");
  Alcotest.(check bool) "analysis before optimization" true
    (order_ok "environment analysis" "Source-level optimization");
  Alcotest.(check bool) "optimization before binding annotation" true
    (order_ok "Source-level optimization" "binding annotation");
  Alcotest.(check bool) "representation before pdl numbers" true
    (order_ok "representation annotation" "pdl number");
  Alcotest.(check bool) "target annotation before code generation" true
    (order_ok "target annotation" "Code generation")

(* T2: Table 2 internal constructs ----------------------------------------- *)

let test_t2_constructs () =
  (* one source program per construct; each must convert and round-trip *)
  let probes =
    [
      ("term", "'(a b)");
      ("variable", "((lambda (x) x) 1)");
      ("caseq", "(caseq x ((1) 'a) (t 'b))");
      ("catcher", "(catch 'tag 1)");
      ("go", "(prog () loop (go loop))");
      ("if", "(if a 1 2)");
      ("lambda", "(lambda (x) x)");
      ("progbody", "(prog () 1)");
      ("progn", "(progn 1 2)");
      ("return", "(prog () (return 3))");
      ("setq", "((lambda (v) (setq v 1)) 0)");
      ("call", "(f 1 2)");
    ]
  in
  List.iter
    (fun (name, src) ->
      let n = S1_frontend.Convert.expression (Reader.parse_one src) in
      let text = Backtrans.to_string n in
      Alcotest.(check bool) (name ^ " converts and back-translates") true
        (String.length text > 0))
    probes;
  (* the construct inventory is exactly Table 2's twelve *)
  let kinds =
    [ "Term"; "Var"; "Caseq"; "Catcher"; "Go"; "If"; "Lambda"; "Progbody"; "Progn";
      "Return"; "Setq"; "Call" ]
  in
  Alcotest.(check int) "twelve constructs" 12 (List.length kinds)

(* T3: Table 3 internal representations ------------------------------------- *)

let test_t3_representations () =
  let names = List.map Node.rep_name Node.all_reps in
  Alcotest.(check int) "fourteen representations" 14 (List.length names);
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "SWFIX"; "DWFIX"; "HWFLO"; "SWFLO"; "DWFLO"; "TWFLO"; "HWCPLX"; "SWCPLX"; "DWCPLX";
      "TWCPLX"; "POINTER"; "BIT"; "JUMP"; "NONE" ]

(* T4: Table 4 — the generated code for testfn ------------------------------- *)

let testfn_src =
  "(defun testfn (a &optional (b 3.0) (c a))\n\
  \  (let ((d (+$f a b c)) (e (*$f a b c)))\n\
  \    (let ((q (sin$f e)))\n\
  \      (frotz d e (max$f d e))\n\
  \      q)))"

let test_t4_testfn_code () =
  let c = C.create () in
  ignore (C.eval_string c "(defun frotz (x y z) (list x y z))");
  let listing, _ = C.listing_of c (Reader.parse_one testfn_src) in
  (* argument-count dispatch through a data table *)
  Alcotest.(check bool) "dispatch table" true (contains listing "DISPATCH");
  Alcotest.(check bool) "per-count cases" true
    (contains listing "Come here if 1 arguments were supplied."
    && contains listing "Come here if 2 arguments were supplied."
    && contains listing "Come here if 3 arguments were supplied.");
  Alcotest.(check bool) "default for b" true
    (contains listing "Calculate default value for parameter 2 [B]");
  Alcotest.(check bool) "default for c" true
    (contains listing "Calculate default value for parameter 3 [C]");
  (* frame setup: pointer memory and DTP-GC-stamped scratch memory *)
  Alcotest.(check bool) "pointer slots allocated" true
    (contains listing "words of pointer memory");
  Alcotest.(check bool) "scratch slots allocated" true (contains listing "scratch memory");
  (* the float pipeline: FADD/FMULT for the lets, FMAX for the argument,
     FSIN (argument in cycles) for q *)
  Alcotest.(check bool) "FADD" true (contains listing "FADD");
  Alcotest.(check bool) "FMULT" true (contains listing "FMULT");
  Alcotest.(check bool) "FMAX" true (contains listing "FMAX");
  Alcotest.(check bool) "FSIN" true (contains listing "FSIN");
  (* pdl numbers: raw results installed in stack slots and MOVP'd *)
  Alcotest.(check bool) "pdl install" true
    (contains listing "Install value for PDL-allocated number.");
  Alcotest.(check bool) "MOVP single-flonum" true
    (contains listing "MOVP *:DTP-SINGLE-FLONUM");
  (* the call to frotz *)
  Alcotest.(check bool) "call frotz" true (contains listing "%CALL");
  (* the sin->sinc constant from the optimizer, as a raw SWFLO immediate *)
  let half_pi_recip =
    string_of_int (F36.encode_single (F36.single_of_float (1.0 /. (2.0 *. Float.pi))))
  in
  Alcotest.(check bool) "1/2pi constant" true (contains listing half_pi_recip)
  ;
  (* and it runs: results match the interpreter *)
  let c2 = C.create () in
  ignore (C.eval_string c2 "(defun frotz (x y z) (list x y z))");
  ignore (C.eval_string c2 testfn_src);
  let compiled = C.eval_string c2 "(testfn 1.0 2.0 4.0)" in
  ignore (S1_interp.Interp.eval_string c2.C.it "(defun itf (a b c) (sin (* a b c)))");
  let expected = S1_interp.Interp.eval_string c2.C.it "(itf 1.0 2.0 4.0)" in
  Alcotest.(check bool) "value agrees with radian sine" true
    (abs_float
       (S1_runtime.Obj.single_value c2.C.rt.Rt.obj compiled
       -. S1_runtime.Obj.single_value c2.C.rt.Rt.obj expected)
    < 1e-6)

(* E5: §5 boolean short-circuiting compiles to pure jumps -------------------- *)

let test_e5_short_circuit_code () =
  let c = C.create () in
  let listing, _ =
    C.listing_of c
      (Reader.parse_one "(defun choose (a b c e1 e2) (if (and a (or b c)) e1 e2))")
  in
  (* no function calls, no value materialization of the boolean: only
     conditional jumps *)
  Alcotest.(check int) "no calls" 0 (count_sub listing "%CALL");
  Alcotest.(check int) "no services" 0 (count_sub listing "SVC");
  Alcotest.(check bool) "conditional jumps present" true (contains listing "JMP");
  (* each arm's value is loaded at most twice (then/else merge), no
     duplication explosion *)
  Alcotest.(check bool) "compact" true (count_sub listing "(FP" < 30)

(* E6: §6.1 — the RT-register dance ------------------------------------------- *)

(* E6a: the paper's Z[I,K] := A[I,J]*B[J,K] + C[I,K] + D sequence, written
   exactly as the paper's listing and executed on real arrays: it must
   compute correctly and contain zero MOV instructions. *)
let test_e6a_paper_sequence () =
  let cpu = Cpu.create () in
  let mem = cpu.Cpu.mem in
  let dim = 4 in
  (* row-major dim x dim float arrays *)
  let alloc_array () = Mem.alloc_static mem (dim * dim) in
  let arr_a = alloc_array () and arr_b = alloc_array () and arr_c = alloc_array () and arr_z = alloc_array () in
  let set base i j v = Mem.write mem (base + (i * dim) + j) (F36.encode_single v) in
  let get base i j = F36.decode_single (Mem.read mem (base + (i * dim) + j)) in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      set arr_a i j (float_of_int ((i * 10) + j));
      set arr_b i j (float_of_int ((j * 7) - i));
      set arr_c i j 0.5;
      set arr_z i j 0.0
    done
  done;
  let i_, j_, k_ = (1, 2, 3) in
  let d = 2.25 in
  (* registers: R10=I, R11=J, R12=K; dimension stride in R13 *)
  let open Isa in
  let prog =
    Asm.
      [
        Label "GO";
        (* RTA := I*dim + J : subscript for A *)
        Instr (Bin (MULT, S, Reg rta, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Reg rta, Reg rta, Reg 11));
        (* RTB := J*dim + K : subscript for B *)
        Instr (Bin (MULT, S, Reg rtb, Reg 11, Reg 13));
        Instr (Bin (ADD, S, Reg rtb, Reg rtb, Reg 12));
        (* FMULT RTA, A(RTA), B(RTB) *)
        Instr
          (Bin
             ( FMULT, S, Reg rta,
               Idx { base = 16; disp = 0; index = rta; shift = 0 },
               Idx { base = 17; disp = 0; index = rtb; shift = 0 } ));
        (* RTB := I*dim + K : subscript for C *)
        Instr (Bin (MULT, S, Reg rtb, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Reg rtb, Reg rtb, Reg 12));
        (* FADD RTA, C(RTB) *)
        Instr
          (Bin
             ( FADD, S, Reg rta, Reg rta,
               Idx { base = 18; disp = 0; index = rtb; shift = 0 } ));
        (* RTB := I*dim + K : subscript for Z (recomputed, paper-style) *)
        Instr (Bin (MULT, S, Reg rtb, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Reg rtb, Reg rtb, Reg 12));
        (* FADD Z(RTB), RTA, D : store the final sum straight to Z *)
        Instr
          (Bin
             ( FADD, S,
               Idx { base = 19; disp = 0; index = rtb; shift = 0 },
               Reg rta, Reg 20 ));
        Instr Halt;
      ]
  in
  let image = Cpu.load cpu prog in
  Cpu.set_reg cpu 10 i_;
  Cpu.set_reg cpu 11 j_;
  Cpu.set_reg cpu 12 k_;
  Cpu.set_reg cpu 13 dim;
  Cpu.set_reg cpu 16 arr_a;
  Cpu.set_reg cpu 17 arr_b;
  Cpu.set_reg cpu 18 arr_c;
  Cpu.set_reg cpu 19 arr_z;
  Cpu.set_reg cpu 20 (F36.encode_single d);
  Cpu.run cpu ~at:(Cpu.label_addr image "GO");
  let expected = (get arr_a i_ j_ *. get arr_b j_ k_) +. get arr_c i_ k_ +. d in
  Alcotest.(check (float 1e-4)) "Z[I,K] computed" expected (get arr_z i_ k_);
  (* the paper's claim: no MOV instructions needed *)
  Alcotest.(check int) "zero MOVs" 0 cpu.Cpu.stats.Cpu.movs

(* E6b: the harder variant without +D needs one temporary but still no
   MOVs: "computing it ahead allows the subscript computation to dance
   into RTA and then out again into TEMP". *)
let test_e6b_harder_variant () =
  let cpu = Cpu.create () in
  let mem = cpu.Cpu.mem in
  let dim = 4 in
  let alloc_array () = Mem.alloc_static mem (dim * dim) in
  let arr_a = alloc_array () and arr_b = alloc_array () and arr_c = alloc_array () and arr_z = alloc_array () in
  let temp = Mem.alloc_static mem 1 in
  let set base i j v = Mem.write mem (base + (i * dim) + j) (F36.encode_single v) in
  let get base i j = F36.decode_single (Mem.read mem (base + (i * dim) + j)) in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      set arr_a i j (float_of_int (i + j));
      set arr_b i j (float_of_int ((i * 2) + j));
      set arr_c i j 1.25;
      set arr_z i j 0.0
    done
  done;
  let i_, j_, k_ = (2, 1, 3) in
  let open Isa in
  let prog =
    Asm.
      [
        Label "GO";
        (* TEMP := I*dim + K, computed ahead (through RTA, then out) *)
        Instr (Bin (MULT, S, Reg rta, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Mabs temp, Reg rta, Reg 12));
        (* RTA := I*dim + J *)
        Instr (Bin (MULT, S, Reg rta, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Reg rta, Reg rta, Reg 11));
        (* RTB := J*dim + K *)
        Instr (Bin (MULT, S, Reg rtb, Reg 11, Reg 13));
        Instr (Bin (ADD, S, Reg rtb, Reg rtb, Reg 12));
        Instr
          (Bin
             ( FMULT, S, Reg rta,
               Idx { base = 16; disp = 0; index = rta; shift = 0 },
               Idx { base = 17; disp = 0; index = rtb; shift = 0 } ));
        (* RTB := I*dim + K for C *)
        Instr (Bin (MULT, S, Reg rtb, Reg 10, Reg 13));
        Instr (Bin (ADD, S, Reg rtb, Reg rtb, Reg 12));
        (* Z(TEMP) := RTA + C(RTB) — subscript recovered from TEMP *)
        Instr (Mov (Reg 21, Mabs temp));
        Instr
          (Bin
             ( FADD, S,
               Idx { base = 19; disp = 0; index = 21; shift = 0 },
               Reg rta,
               Idx { base = 18; disp = 0; index = rtb; shift = 0 } ));
        Instr Halt;
      ]
  in
  let image = Cpu.load cpu prog in
  Cpu.set_reg cpu 10 i_;
  Cpu.set_reg cpu 11 j_;
  Cpu.set_reg cpu 12 k_;
  Cpu.set_reg cpu 13 dim;
  Cpu.set_reg cpu 16 arr_a;
  Cpu.set_reg cpu 17 arr_b;
  Cpu.set_reg cpu 18 arr_c;
  Cpu.set_reg cpu 19 arr_z;
  Cpu.run cpu ~at:(Cpu.label_addr image "GO");
  let expected = (get arr_a i_ j_ *. get arr_b j_ k_) +. get arr_c i_ k_ in
  Alcotest.(check (float 1e-4)) "Z[I,K] computed" expected (get arr_z i_ k_);
  (* one MOV to recover the temp subscript into an index register; the
     arithmetic itself needs none *)
  Alcotest.(check bool) "at most one MOV" true (cpu.Cpu.stats.Cpu.movs <= 1)

(* E6c: our own compiler on straight-line float code produces a MOV-free
   arithmetic core. *)
let test_e6c_compiled_float_core () =
  let c = C.create () in
  let listing, _ =
    C.listing_of c
      (Reader.parse_one
         "(defun horner (x a b c d)\n\
         \  (declare (single-float x a b c d))\n\
         \  (+$f (*$f (+$f (*$f (+$f (*$f a x) b) x) c) x) d))")
  in
  (* isolate the body (after the BODY label, before the boxing) *)
  let body_start = Str.search_forward (Str.regexp_string "-BODY") listing 0 in
  let body = Str.string_after listing body_start in
  (* the arithmetic core ends at the last float instruction; the boxing
     of the final result (heap or pdl) follows it *)
  let arith_end =
    let last marker =
      let rec go i best =
        match Str.search_forward (Str.regexp_string marker) body i with
        | j -> go (j + 1) j
        | exception Not_found -> best
      in
      go 0 0
    in
    max (last "FADD") (last "FMULT")
  in
  let core = Str.string_before body arith_end in
  Alcotest.(check bool) "FMULT in core" true (contains core "FMULT");
  Alcotest.(check bool) "FADD in core" true (contains core "FADD");
  (* parameters were unboxed on entry, so the arithmetic core reads
     registers/slots directly: no register-shuffle MOVs between the float
     ops.  We allow frame loads (MOV from (TP n)) but no reg-to-reg. *)
  let movs =
    List.length
      (List.filter
         (fun line -> contains line "(MOV R" || contains line "(MOV RT")
         (String.split_on_char '\n' core))
  in
  Alcotest.(check int) "no register-shuffle MOVs in float core" 0 movs

(* E7: the §7 optimizer transcript --------------------------------------------- *)

let test_e7_transcript () =
  let c = C.create () in
  ignore (C.eval_string c "(defun frotz (x y z) (list x y z))");
  let _, ts = C.listing_of c (Reader.parse_one testfn_src) in
  let rules = S1_transform.Transcript.rules_fired ts in
  let has r = List.mem r rules in
  Alcotest.(check bool) "META-EVALUATE-ASSOC-COMMUT-CALL" true
    (has "META-EVALUATE-ASSOC-COMMUT-CALL");
  Alcotest.(check bool) "CONSIDER-REVERSING-ARGUMENTS" true
    (has "CONSIDER-REVERSING-ARGUMENTS");
  Alcotest.(check bool) "META-SIN-TO-SINC" true (has "META-SIN-TO-SINC");
  Alcotest.(check bool) "META-SUBSTITUTE" true (has "META-SUBSTITUTE");
  (* the printed transcript uses the paper's format *)
  let text = S1_transform.Transcript.to_string ts in
  Alcotest.(check bool) "transcript format" true
    (contains text ";**** Optimizing this form:"
    && contains text ";**** courtesy of");
  (* the assoc-commut step produces the paper's exact nesting *)
  Alcotest.(check bool) "paper's (+$F (+$F C B) A) shape" true
    (contains text "(+$F (+$F C B) A)");
  Alcotest.(check bool) "paper's (*$F (*$F C B) A) shape" true
    (contains text "(*$F (*$F C B) A)")

(* X7: special-variable lookup caching ------------------------------------------ *)

let test_x7_special_caching () =
  let count_lookups options =
    let c = C.create ~options () in
    ignore
      (C.eval_string c
         "(defvar *s* 5)\n\
          (defun use-s (n acc) (if (zerop n) acc (use-s (1- n) (+ acc (+ *s* (+ *s* *s*))))))");
    Cpu.reset_stats c.C.rt.Rt.cpu;
    ignore (C.eval_string c "(use-s 200 0)");
    c.C.rt.Rt.cpu.Cpu.stats.Cpu.svcs
  in
  let cached = count_lookups S1_codegen.Gen.default_options in
  let uncached =
    count_lookups
      { S1_codegen.Gen.default_options with S1_codegen.Gen.cache_specials = false }
  in
  Alcotest.(check bool)
    (Printf.sprintf "caching reduces lookups (%d vs %d services)" cached uncached)
    true (cached < uncached)

let () =
  Alcotest.run "experiments"
    [
      ( "tables",
        [
          Alcotest.test_case "T1 phase structure" `Quick test_t1_phases;
          Alcotest.test_case "T2 internal constructs" `Quick test_t2_constructs;
          Alcotest.test_case "T3 representations" `Quick test_t3_representations;
          Alcotest.test_case "T4 testfn code" `Quick test_t4_testfn_code;
        ] );
      ( "worked-examples",
        [
          Alcotest.test_case "E5 short-circuit code" `Quick test_e5_short_circuit_code;
          Alcotest.test_case "E6a paper matrix sequence" `Quick test_e6a_paper_sequence;
          Alcotest.test_case "E6b harder variant" `Quick test_e6b_harder_variant;
          Alcotest.test_case "E6c compiled float core" `Quick test_e6c_compiled_float_core;
          Alcotest.test_case "E7 optimizer transcript" `Quick test_e7_transcript;
          Alcotest.test_case "X7 special caching" `Quick test_x7_special_caching;
        ] );
    ]
