(* Tests for the source-level optimizer (paper §5): the three lambda
   rules, conditional distribution, canonicalizations, and the worked
   examples of §5 and §7. *)

module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader
open S1_ir
open S1_frontend
open S1_transform
module I = S1_interp.Interp
module Rt = S1_runtime.Rt

let parse = Reader.parse_one

let optimize ?config src =
  let n = Convert.expression (parse src) in
  let ts = Transcript.create () in
  ignore (Simplify.run ?config ~transcript:ts n);
  (n, ts)

let optimized_text ?config src =
  let n, _ = optimize ?config src in
  Backtrans.to_string n

let check_opt ?config msg expected src =
  Alcotest.(check string) msg expected (optimized_text ?config src)

let test_beta_basic () =
  check_opt "constant propagation + folding" "3" "((lambda (x) (+ x 1)) 2)";
  check_opt "let collapses" "7" "(let ((a 3) (b 4)) (+ a b))";
  check_opt "nested lets" "10" "(let* ((a 1) (b (+ a 2)) (c (+ a b 6))) c)";
  (* a free (dynamic) variable must NOT be substituted past a call... *)
  check_opt "free variable not aliased" "((LAMBDA (X) (F X)) Y)" "((lambda (x) (f x)) y)";
  (* ...but a lexical one is *)
  check_opt "lexical alias" "((LAMBDA (Y) (F Y)) (G))"
    "((lambda (y) ((lambda (x) (f x)) y)) (g))";
  check_opt "unused pure arg dropped" "'OK" "((lambda (x) 'ok) (+ 1 2))";
  (* unused but effectful argument is retained *)
  check_opt "unused effectful arg kept" "((LAMBDA (X) 'OK) (PRINT 1))"
    "((lambda (x) 'ok) (print 1))"

let test_beta_safety () =
  (* no substitution of an assigned parameter *)
  let out = optimized_text "((lambda (x) (progn (setq x 2) x)) (f))" in
  Alcotest.(check bool) "setq param not substituted" true
    (String.length out > 0
    &&
    (* must still bind x *)
    try
      ignore (Str.search_forward (Str.regexp_string "LAMBDA") out 0);
      true
    with Not_found -> false);
  (* allocation is not duplicated: (cons 1 2) referenced twice stays bound *)
  let out2 = optimized_text "((lambda (x) (list x x)) (cons 1 2))" in
  (try
     ignore (Str.search_forward (Str.regexp_string "LAMBDA") out2 0)
   with Not_found -> Alcotest.failf "allocation was duplicated: %s" out2);
  (* a mutable-memory read is not moved past effects: (car c) stays bound *)
  let out3 = optimized_text "((lambda (x) (progn (rplaca c 9) x)) (car c))" in
  try ignore (Str.search_forward (Str.regexp_string "LAMBDA") out3 0)
  with Not_found -> Alcotest.failf "mutable read was moved: %s" out3

let test_fold () =
  check_opt "arith" "42" "(* 6 7)";
  check_opt "exact ratio" "1/3" "(/ 1 3)";
  check_opt "comparison" "'YES" "(if (< 1 2) 'yes 'no)";
  check_opt "nested" "10" "(+ (* 2 3) (- 5 1))";
  check_opt "car of constant" "'A" "(car '(a b))";
  check_opt "no fold with variables" "(+ 1 X)" "(+ 1 x)"

let test_identity_and_reverse () =
  check_opt "additive identity" "X" "(+ x 0)";
  check_opt "multiplicative identity" "X" "(* 1 x)";
  check_opt "float identity" "X" "(+$f x 0.0)";
  check_opt "constants first" "(* 5 X)" "(* x 5)";
  (* non-commutative op unchanged *)
  check_opt "no reverse for -" "(- X 5)" "(- x 5)"

let test_assoc () =
  (* the paper's §7 shape: (+$f a b c) => (+$f (+$f c b) a) *)
  check_opt "paper's assoc nesting" "(+$F (+$F C B) A)" "(+$f a b c)";
  check_opt "mult too" "(*$F (*$F C B) A)" "(*$f a b c)";
  check_opt "four args" "(+$F (+$F (+$F D C) B) A)" "(+$f a b c d)";
  (* generic + with constants collapses them *)
  check_opt "partial constant folding" "(+ (+ 5 B) A)" "(+ a b 2 3)"

let test_if_rules () =
  check_opt "constant predicate true" "'A" "(if t 'a 'b)";
  check_opt "constant predicate false" "'B" "(if () 'a 'b)";
  check_opt "not inversion" "(IF P 'B 'A)" "(if (not p) 'a 'b)";
  check_opt "redundant inner test" "(IF P 'A 'C)" "(if p (if p 'a 'b) 'c)";
  check_opt "hoist progn predicate" "(PROGN (F) (IF P 'A 'B))" "(if (progn (f) p) 'a 'b)"

let test_boolean_short_circuit () =
  (* The §5 example: (if (and a (or b c)) e1 e2) with cheap arms reduces
     to pure nested conditionals with no value materialization. *)
  let out = optimized_text "(if (and a (or b c)) 'e1 'e2)" in
  Alcotest.(check string) "fully short-circuited" "(IF A (IF B 'E1 (IF C 'E1 'E2)) 'E2)" out

let test_boolean_short_circuit_with_thunks () =
  (* With expensive arms the f/g thunks appear and then integrate away
     into jump lambdas; the result must still contain each arm once. *)
  let out =
    optimized_text "(if (and a (or b c)) (expensive-1 x y z w q r) (expensive-2 x y z w q r))"
  in
  let count sub =
    let re = Str.regexp_string sub in
    let rec go i acc =
      match Str.search_forward re out i with
      | j -> go (j + 1) (acc + 1)
      | exception Not_found -> acc
    in
    go 0 0
  in
  Alcotest.(check int) "arm 1 appears exactly once" 1 (count "EXPENSIVE-1");
  Alcotest.(check int) "arm 2 appears exactly once" 1 (count "EXPENSIVE-2")

let test_sinc () =
  let out = optimized_text "(sin$f e)" in
  Alcotest.(check bool) "sinc appears" true
    (try ignore (Str.search_forward (Str.regexp_string "SINC$F") out 0); true
     with Not_found -> false);
  Alcotest.(check bool) "constant is first argument" true
    (try ignore (Str.search_forward (Str.regexp "(\\*\\$F 0\\.159") out 0); true
     with Not_found -> false)

let test_paper_testfn_transcript () =
  (* §7: the compiler's own worked example.  We reproduce the optimizer
     steps and check the rules fire in the documented order. *)
  let src =
    "((lambda (a b c)\n\
    \   ((lambda (d e)\n\
    \      ((lambda (q) (progn (frotz d e (max$f d e)) q))\n\
    \       (sin$f (*$f e 0.159154943))))\n\
    \    (+$f a b c) (*$f a b c)))\n\
    \  p1 p2 p3)"
  in
  (* NOTE: we drive the body shape directly; the &optional machinery is
     exercised by the codegen tests. *)
  let _, ts = optimize src in
  let rules = Transcript.rules_fired ts in
  let has r = List.mem r rules in
  Alcotest.(check bool) "assoc-commut fired" true (has "META-EVALUATE-ASSOC-COMMUT-CALL");
  Alcotest.(check bool) "reversing fired" true (has "CONSIDER-REVERSING-ARGUMENTS");
  Alcotest.(check bool) "substitution fired" true (has "META-SUBSTITUTE")

let test_transcript_format () =
  let _, ts = optimize "(+$f a b c)" in
  let text = Transcript.to_string ts in
  Alcotest.(check bool) "paper's transcript format" true
    (try
       ignore (Str.search_forward (Str.regexp_string ";**** Optimizing this form: (+$F A B C)") text 0);
       ignore (Str.search_forward (Str.regexp_string "courtesy of META-EVALUATE-ASSOC-COMMUT-CALL") text 0);
       true
     with Not_found -> false)

let test_caseq_constant () =
  check_opt "constant caseq" "'TWO" "(caseq 2 ((1) 'one) ((2) 'two) (t 'other))";
  check_opt "default" "'OTHER" "(caseq 9 ((1) 'one) (t 'other))"

let test_type_specialize () =
  let out =
    optimized_text
      "((lambda (x y) (declare (single-float x y)) (+ x y)) a b)"
  in
  Alcotest.(check bool) "+ became +$F" true
    (try ignore (Str.search_forward (Str.regexp_string "+$F") out 0); true
     with Not_found -> false)

let test_ablation_toggles () =
  let no_opt = Rules.nothing in
  Alcotest.(check string) "disabled optimizer leaves tree alone"
    "(+ 1 2)"
    (optimized_text ~config:no_opt "(+ 1 2)");
  let only_fold = { Rules.nothing with Rules.fold = true } in
  Alcotest.(check string) "folding alone works" "3" (optimized_text ~config:only_fold "(+ 1 2)")

(* Semantic preservation: optimizer output evaluates identically. -------- *)

let gen_program =
  (* closed programs over let-bound integer variables *)
  let open QCheck2.Gen in
  let var_names = [ "V1"; "V2"; "V3" ] in
  let rec expr n =
    if n = 0 then
      oneof
        [ map (fun i -> Sexp.Int i) (int_range (-20) 20);
          map (fun v -> Sexp.Sym v) (oneofl var_names) ]
    else
      oneof
        [
          map (fun i -> Sexp.Int i) (int_range (-20) 20);
          map (fun v -> Sexp.Sym v) (oneofl var_names);
          map2
            (fun op (a, b) -> Sexp.List [ Sexp.Sym op; a; b ])
            (oneofl [ "+"; "-"; "*"; "MAX"; "MIN" ])
            (pair (expr (n / 2)) (expr (n / 2)));
          map3
            (fun p a b -> Sexp.List [ Sexp.Sym "IF"; Sexp.List [ Sexp.Sym "<"; p; Sexp.Int 0 ]; a; b ])
            (expr (n / 3)) (expr (n / 2)) (expr (n / 2));
          map2
            (fun inits body ->
              Sexp.List
                [ Sexp.Sym "LET";
                  Sexp.List
                    (List.map2
                       (fun v e -> Sexp.List [ Sexp.Sym v; e ])
                       var_names inits);
                  body ])
            (flatten_l [ expr (n / 3); expr (n / 3); expr (n / 3) ])
            (expr (n / 2));
        ]
  in
  sized (fun n ->
      let open QCheck2.Gen in
      map2
        (fun inits body ->
          Sexp.List
            [ Sexp.Sym "LET";
              Sexp.List
                (List.map2 (fun v e -> Sexp.List [ Sexp.Sym v; e ]) var_names inits);
              body ])
        (flatten_l
           [ map (fun i -> Sexp.Int i) (int_range (-20) 20);
             map (fun i -> Sexp.Int i) (int_range (-20) 20);
             map (fun i -> Sexp.Int i) (int_range (-20) 20) ])
        (expr (min n 12)))

let prop_optimizer_preserves_semantics =
  QCheck2.Test.make ~count:200 ~name:"optimizer preserves interpreter semantics"
    gen_program (fun prog ->
      let it = I.boot () in
      let reference = I.eval_sexp it prog in
      let n = Convert.expression prog in
      ignore (Simplify.run n);
      let optimized = I.eval_node it n in
      Rt.equal it.I.rt reference optimized)

let () =
  Alcotest.run "transform"
    [
      ( "rules",
        [
          Alcotest.test_case "beta basics" `Quick test_beta_basic;
          Alcotest.test_case "beta safety" `Quick test_beta_safety;
          Alcotest.test_case "constant folding" `Quick test_fold;
          Alcotest.test_case "identity and reversing" `Quick test_identity_and_reverse;
          Alcotest.test_case "assoc canonicalization" `Quick test_assoc;
          Alcotest.test_case "if rules" `Quick test_if_rules;
          Alcotest.test_case "boolean short-circuit (paper §5)" `Quick
            test_boolean_short_circuit;
          Alcotest.test_case "short-circuit with thunks" `Quick
            test_boolean_short_circuit_with_thunks;
          Alcotest.test_case "sin to sinc" `Quick test_sinc;
          Alcotest.test_case "paper §7 transcript rules" `Quick test_paper_testfn_transcript;
          Alcotest.test_case "transcript format" `Quick test_transcript_format;
          Alcotest.test_case "caseq constant" `Quick test_caseq_constant;
          Alcotest.test_case "type specialization" `Quick test_type_specialize;
          Alcotest.test_case "ablation toggles" `Quick test_ablation_toggles;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_optimizer_preserves_semantics ]);
    ]
