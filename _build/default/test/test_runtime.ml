(* Tests for the runtime substrate: bignums, heap/GC, object model,
   numeric tower, and the booted Lisp world. *)

open S1_runtime
module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* Bignums -------------------------------------------------------------- *)

let big = Bignum.of_string

let test_bignum_basic () =
  check_str "of/to string" "123456789012345678901234567890"
    (Bignum.to_string (big "123456789012345678901234567890"));
  check_str "negative" "-42" (Bignum.to_string (big "-42"));
  check_str "zero" "0" (Bignum.to_string Bignum.zero);
  check_bool "equal" true (Bignum.equal (big "100") (Bignum.of_int 100));
  check_int "sign" (-1) (Bignum.sign (big "-7"));
  check_bool "even" true (Bignum.is_even (big "123456789012345678901234567890"));
  check_bool "odd" false (Bignum.is_even (big "3"))

let test_bignum_arith () =
  let a = big "99999999999999999999" and b = big "1" in
  check_str "carry chain" "100000000000000000000" (Bignum.to_string (Bignum.add a b));
  check_str "sub to zero" "0" (Bignum.to_string (Bignum.sub a a));
  check_str "mul" "9999999999999999999800000000000000000001"
    (Bignum.to_string (Bignum.mul a a));
  check_str "mixed signs" "-99999999999999999998"
    (Bignum.to_string (Bignum.sub (Bignum.neg a) (Bignum.neg b)))

let test_bignum_divmod () =
  let check_div a b q r =
    let q', r' = Bignum.divmod (big a) (big b) in
    check_str (a ^ "/" ^ b ^ " quotient") q (Bignum.to_string q');
    check_str (a ^ "/" ^ b ^ " remainder") r (Bignum.to_string r')
  in
  check_div "100" "7" "14" "2";
  check_div "-100" "7" "-14" "-2";
  check_div "100" "-7" "-14" "2";
  check_div "123456789012345678901234567890" "987654321" "124999998873437499901"
    "574845669";
  check_div "5" "123456789012345678901234567890" "0" "5";
  (match Bignum.divmod Bignum.one Bignum.zero with
  | exception Division_by_zero -> ()
  | _ -> Alcotest.fail "expected Division_by_zero")

let test_bignum_gcd () =
  check_str "gcd" "6" (Bignum.to_string (Bignum.gcd (Bignum.of_int 48) (Bignum.of_int 18)));
  check_str "gcd big" "9"
    (Bignum.to_string (Bignum.gcd (big "123456789") (big "987654321")));
  check_str "gcd zero" "5" (Bignum.to_string (Bignum.gcd Bignum.zero (Bignum.of_int 5)))

let test_bignum_conversions () =
  check_int "to_int" 123456 (Option.get (Bignum.to_int_opt (big "123456")));
  check_bool "too big" true (Bignum.to_int_opt (big (String.make 30 '9')) = None);
  check_bool "fits fixnum" true (Bignum.fits_fixnum (Bignum.of_int 1000));
  check_bool "fixnum boundary" false (Bignum.fits_fixnum (Bignum.of_int (1 lsl 31)));
  Alcotest.(check (float 1.0)) "to_float" 1e20 (Bignum.to_float (big "100000000000000000000"));
  check_str "of_float" "1234567" (Bignum.to_string (Bignum.of_float 1234567.8))

let prop_bignum_addsub =
  QCheck2.Test.make ~count:500 ~name:"bignum add/sub round trip"
    QCheck2.Gen.(pair (int_range (-1000000000) 1000000000) (int_range (-1000000000) 1000000000))
    (fun (a, b) ->
      let ba = Bignum.of_int a and bb = Bignum.of_int b in
      Bignum.equal (Bignum.sub (Bignum.add ba bb) bb) ba)

let prop_bignum_divmod =
  QCheck2.Test.make ~count:500 ~name:"bignum divmod identity"
    QCheck2.Gen.(pair (int_range (-100000000) 100000000) (int_range 1 1000000))
    (fun (a, b) ->
      let ba = Bignum.of_int a and bb = Bignum.of_int b in
      let q, r = Bignum.divmod ba bb in
      Bignum.equal ba (Bignum.add (Bignum.mul q bb) r)
      && Bignum.compare (Bignum.abs r) bb < 0
      && Bignum.to_string q = string_of_int (a / b))

let prop_bignum_string_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"bignum string round trip"
    QCheck2.Gen.(string_size ~gen:(char_range '0' '9') (int_range 1 40))
    (fun s ->
      let b = Bignum.of_string s in
      (* strip leading zeros for comparison *)
      let canonical =
        let s' = ref 0 in
        while !s' < String.length s - 1 && s.[!s'] = '0' do incr s' done;
        String.sub s !s' (String.length s - !s')
      in
      Bignum.to_string b = canonical)

(* Heap and GC ----------------------------------------------------------- *)

let test_heap_alloc_and_collect () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  (* Allocate garbage; everything unreachable should be collected. *)
  for _ = 1 to 1000 do
    ignore (Obj.cons o (Obj.fixnum 1) rt.Rt.nil)
  done;
  Heap.collect rt.Rt.heap;
  let live1 = Heap.live_words rt.Rt.heap in
  (* A protected value survives. *)
  let keep = Obj.cons o (Obj.fixnum 42) rt.Rt.nil in
  Rt.protect rt keep;
  for _ = 1 to 1000 do
    ignore (Obj.cons o (Obj.fixnum 1) rt.Rt.nil)
  done;
  Heap.collect rt.Rt.heap;
  check_int "car survives GC" 42 (Obj.fixnum_value (Obj.car o keep));
  check_bool "garbage collected" true (Heap.live_words rt.Rt.heap < live1 + 100);
  check_bool "collections counted" true ((Heap.stats rt.Rt.heap).Heap.collections >= 2)

let test_heap_reuse () =
  (* A tiny heap must survive many transient allocations by recycling. *)
  let config = { S1_machine.Mem.default_config with heap_words = 4096 } in
  let rt = Rt.create ~config () in
  let o = rt.Rt.obj in
  for i = 1 to 100_000 do
    ignore (Obj.cons o (Obj.fixnum i) rt.Rt.nil)
  done;
  check_bool "many collections" true ((Heap.stats rt.Rt.heap).Heap.collections > 10)

let test_heap_deep_structure () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  (* Build a long list, root it, collect, verify intact. *)
  let rec build n acc = if n = 0 then acc else build (n - 1) (Obj.cons o (Obj.fixnum n) acc) in
  let lst = build 10000 rt.Rt.nil in
  Rt.protect rt lst;
  for _ = 1 to 5000 do
    ignore (Obj.single o 3.14)
  done;
  Heap.collect rt.Rt.heap;
  let rec len w acc = if w = rt.Rt.nil then acc else len (Obj.cdr o w) (acc + 1) in
  check_int "list intact after GC" 10000 (len lst 0)

(* Object model ----------------------------------------------------------- *)

let test_obj_strings () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  List.iter
    (fun s -> check_str ("string " ^ s) s (Obj.string_value o (Obj.string_ o s)))
    [ ""; "a"; "ab"; "abc"; "abcd"; "abcde"; "hello, world"; String.make 100 'x' ]

let test_obj_numbers () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  Alcotest.(check (float 1e-6)) "single" 3.25 (Obj.single_value o (Obj.single o 3.25));
  Alcotest.(check (float 1e-12)) "double" 3.141592653589793
    (Obj.double_value o (Obj.double o 3.141592653589793));
  check_int "fixnum round trip" (-123456) (Obj.fixnum_value (Obj.fixnum (-123456)));
  let b = Bignum.of_string "123456789012345678901234567890" in
  check_str "bignum heap round trip" "123456789012345678901234567890"
    (Bignum.to_string (Obj.bignum_value o (Obj.bignum o b)))

let test_obj_vectors () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  let v = Obj.vector o [| Obj.fixnum 1; Obj.fixnum 2; Obj.fixnum 3 |] in
  check_int "length" 3 (Obj.vector_length o v);
  check_int "ref" 2 (Obj.fixnum_value (Obj.vector_ref o v 1));
  Obj.vector_set o v 1 (Obj.fixnum 99);
  check_int "set" 99 (Obj.fixnum_value (Obj.vector_ref o v 1));
  (match Obj.vector_ref o v 5 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected bounds error")

let test_obj_nil_car_cdr () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  check_bool "car of nil is nil" true (Obj.car o rt.Rt.nil = rt.Rt.nil);
  check_bool "cdr of nil is nil" true (Obj.cdr o rt.Rt.nil = rt.Rt.nil);
  check_bool "nil is not a cons" true (not (Obj.is_cons o rt.Rt.nil))

(* Numerics ----------------------------------------------------------------- *)

let test_numerics_tower () =
  let rt = Rt.create () in
  let o = rt.Rt.obj in
  let dec w = Numerics.decode o w in
  let enc n = Numerics.encode o n in
  (* (/ 1 2) is the exact ratio 1/2 *)
  let half = Numerics.div (Numerics.of_int 1) (Numerics.of_int 2) in
  (match half with
  | Numerics.Rat (n, d) ->
      check_str "ratio num" "1" (Bignum.to_string n);
      check_str "ratio den" "2" (Bignum.to_string d)
  | _ -> Alcotest.fail "expected ratio");
  (* ratio + ratio collapsing to integer *)
  (match Numerics.add half half with
  | Numerics.Int b -> check_str "1/2+1/2" "1" (Bignum.to_string b)
  | _ -> Alcotest.fail "expected integer");
  (* float contagion *)
  (match Numerics.add half (Numerics.Single 0.25) with
  | Numerics.Single f -> Alcotest.(check (float 1e-6)) "contagion" 0.75 f
  | _ -> Alcotest.fail "expected single");
  (* fixnum overflow to bignum through encode *)
  let big_sum = Numerics.mul (Numerics.of_int (1 lsl 30)) (Numerics.of_int 4) in
  let w = enc big_sum in
  check_bool "overflow became bignum" true (Obj.tag_of w = S1_machine.Tags.Bignum);
  (match dec w with
  | Numerics.Int b -> check_str "value" "4294967296" (Bignum.to_string b)
  | _ -> Alcotest.fail "expected int")

let test_numerics_complex () =
  (* sqrt(-4) = 2i *)
  match Numerics.sqrt_ (Numerics.of_int (-4)) with
  | Numerics.Cpx (re, im) ->
      Alcotest.(check (float 1e-6)) "re" 0.0 (Numerics.to_float re);
      Alcotest.(check (float 1e-6)) "im" 2.0 (Numerics.to_float im)
  | _ -> Alcotest.fail "expected complex"

let test_numerics_rounding () =
  let q mode v = match fst (mode (Numerics.normalize_ratio (Bignum.of_int v) (Bignum.of_int 2))) with
    | Numerics.Int b -> Bignum.to_string b
    | _ -> "?"
  in
  check_str "floor 7/2" "3" (q Numerics.floor_ 7);
  check_str "floor -7/2" "-4" (q Numerics.floor_ (-7));
  check_str "ceiling 7/2" "4" (q Numerics.ceiling_ 7);
  check_str "truncate -7/2" "-3" (q Numerics.truncate_ (-7));
  check_str "round 7/2 ties even" "4" (q Numerics.round_ 7);
  check_str "round 5/2 ties even" "2" (q Numerics.round_ 5)

let test_numerics_expt () =
  match Numerics.expt (Numerics.of_int 3) (Numerics.of_int 40) with
  | Numerics.Int b -> check_str "3^40" "12157665459056928801" (Bignum.to_string b)
  | _ -> Alcotest.fail "expected int"

let prop_numerics_field =
  (* (a+b)-b = a over exact rationals *)
  QCheck2.Test.make ~count:300 ~name:"exact rational field ops"
    QCheck2.Gen.(
      quad (int_range (-1000) 1000) (int_range 1 100) (int_range (-1000) 1000) (int_range 1 100))
    (fun (an, ad, bn, bd) ->
      let a = Numerics.normalize_ratio (Bignum.of_int an) (Bignum.of_int ad) in
      let b = Numerics.normalize_ratio (Bignum.of_int bn) (Bignum.of_int bd) in
      Numerics.eql (Numerics.sub (Numerics.add a b) b) a)

(* Booted world ----------------------------------------------------------- *)

let test_rt_intern () =
  let rt = Builtins.boot () in
  let a = Rt.intern rt "FOO" and b = Rt.intern rt "FOO" in
  check_bool "interning is idempotent" true (a = b);
  check_str "symbol name" "FOO" (Rt.symbol_name rt a);
  check_bool "nil interned" true (Rt.intern rt "NIL" = rt.Rt.nil);
  check_bool "t value is t" true (Rt.symbol_value_dynamic rt rt.Rt.t_ = rt.Rt.t_)

let test_rt_sexp_roundtrip () =
  let rt = Builtins.boot () in
  let cases =
    [ "42"; "(1 2 3)"; "FOO"; "(A (B C) D)"; "3.5"; "\"hi\""; "(1 . 2)"; "2/3";
      "123456789012345678901234567890"; "(1 (2 (3 (4))))"; "#\\a" ]
  in
  List.iter
    (fun src ->
      let s = Reader.parse_one src in
      let w = Rt.sexp_to_value rt s in
      let s' = Rt.value_to_sexp rt w in
      Alcotest.check (Alcotest.testable Sexp.pp Sexp.equal) src s s')
    cases

let test_rt_print () =
  let rt = Builtins.boot () in
  let p src = Rt.print_value rt (Rt.sexp_to_value rt (Reader.parse_one src)) in
  check_str "list" "(1 2 3)" (p "(1 2 3)");
  check_str "nested" "(A (B) C)" (p "(a (b) c)");
  check_str "quote sugar" "'X" (p "(quote x)");
  check_str "dotted" "(1 . 2)" (p "(1 . 2)");
  check_str "ratio" "2/3" (p "4/6")

let test_rt_natives_via_call () =
  let rt = Builtins.boot () in
  let call name args = Rt.call rt (Rt.function_of rt (Rt.intern rt name)) args in
  let fx = Obj.fixnum in
  check_int "(+ 1 2 3)" 6 (Obj.fixnum_value (call "+" [ fx 1; fx 2; fx 3 ]));
  check_int "(* 2 3 4)" 24 (Obj.fixnum_value (call "*" [ fx 2; fx 3; fx 4 ]));
  check_bool "(< 1 2 3)" true (Rt.truthy rt (call "<" [ fx 1; fx 2; fx 3 ]));
  check_bool "(< 1 3 2)" false (Rt.truthy rt (call "<" [ fx 1; fx 3; fx 2 ]));
  let lst = call "LIST" [ fx 1; fx 2 ] in
  check_int "list length" 2 (Obj.fixnum_value (call "LENGTH" [ lst ]));
  let rev = call "REVERSE" [ lst ] in
  check_int "reverse car" 2 (Obj.fixnum_value (Obj.car rt.Rt.obj rev));
  (* exact rational division through the native *)
  let r = call "/" [ fx 1; fx 3 ] in
  check_str "exact division" "1/3" (Rt.print_value rt r);
  (* funcall through the simulator *)
  let plus = Rt.function_of rt (Rt.intern rt "+") in
  check_int "funcall" 7 (Obj.fixnum_value (call "FUNCALL" [ plus; fx 3; fx 4 ]));
  (* mapcar reenters the simulator per element *)
  let one_plus = Rt.function_of rt (Rt.intern rt "1+") in
  let mapped = call "MAPCAR" [ one_plus; lst ] in
  check_str "mapcar" "(2 3)" (Rt.print_value rt mapped)

let test_rt_arity_errors () =
  let rt = Builtins.boot () in
  let call name args = Rt.call rt (Rt.function_of rt (Rt.intern rt name)) args in
  (match call "CAR" [] with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected arity error");
  match call "CAR" [ Obj.fixnum 1; Obj.fixnum 2 ] with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_rt_deep_binding () =
  let rt = Builtins.boot () in
  let x = Rt.intern rt "*X*" in
  Rt.proclaim_special rt x;
  (* unbound read fails *)
  (match Rt.symbol_value_dynamic rt x with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected unbound error");
  Rt.set_symbol_value_dynamic rt x (Obj.fixnum 1);
  check_int "global value" 1 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x));
  Rt.bind_special rt x (Obj.fixnum 2);
  check_int "inner binding" 2 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x));
  Rt.bind_special rt x (Obj.fixnum 3);
  check_int "nested binding" 3 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x));
  (* assignment hits the innermost binding *)
  Rt.set_symbol_value_dynamic rt x (Obj.fixnum 30);
  check_int "assign innermost" 30 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x));
  Rt.unbind_specials rt 1;
  check_int "pop to middle" 2 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x));
  Rt.unbind_specials rt 1;
  check_int "pop to global" 1 (Obj.fixnum_value (Rt.symbol_value_dynamic rt x))

let test_rt_equal () =
  let rt = Builtins.boot () in
  let v src = Rt.sexp_to_value rt (Reader.parse_one src) in
  check_bool "equal lists" true (Rt.equal rt (v "(1 2 (3))") (v "(1 2 (3))"));
  check_bool "unequal lists" false (Rt.equal rt (v "(1 2 3)") (v "(1 2 4)"));
  check_bool "eql numbers" true (Rt.eql rt (v "3.5") (v "3.5"));
  check_bool "eql across types" false (Rt.eql rt (v "3") (v "3.0"));
  check_bool "equal strings" true (Rt.equal rt (v "\"abc\"") (v "\"abc\""));
  check_bool "eq symbols" true (Rt.eq rt (v "FOO") (v "FOO"))

let test_rt_gc_under_pressure_with_simulated_stack () =
  (* Values on the simulated stack must survive GC (conservative scan). *)
  let config = { S1_machine.Mem.default_config with heap_words = 8192 } in
  let rt = Builtins.boot ~config () in
  let o = rt.Rt.obj in
  let keep = Obj.cons o (Obj.fixnum 77) rt.Rt.nil in
  S1_machine.Cpu.push rt.Rt.cpu keep;
  for _ = 1 to 50_000 do
    ignore (Obj.cons o (Obj.fixnum 0) rt.Rt.nil)
  done;
  let popped = S1_machine.Cpu.pop rt.Rt.cpu in
  check_int "stack-held value survived" 77 (Obj.fixnum_value (Obj.car o popped))

let () =
  Alcotest.run "runtime"
    [
      ( "bignum",
        [
          Alcotest.test_case "basics" `Quick test_bignum_basic;
          Alcotest.test_case "arithmetic" `Quick test_bignum_arith;
          Alcotest.test_case "divmod" `Quick test_bignum_divmod;
          Alcotest.test_case "gcd" `Quick test_bignum_gcd;
          Alcotest.test_case "conversions" `Quick test_bignum_conversions;
          QCheck_alcotest.to_alcotest prop_bignum_addsub;
          QCheck_alcotest.to_alcotest prop_bignum_divmod;
          QCheck_alcotest.to_alcotest prop_bignum_string_roundtrip;
        ] );
      ( "heap",
        [
          Alcotest.test_case "alloc and collect" `Quick test_heap_alloc_and_collect;
          Alcotest.test_case "reuse small heap" `Quick test_heap_reuse;
          Alcotest.test_case "deep structure" `Quick test_heap_deep_structure;
        ] );
      ( "obj",
        [
          Alcotest.test_case "strings" `Quick test_obj_strings;
          Alcotest.test_case "numbers" `Quick test_obj_numbers;
          Alcotest.test_case "vectors" `Quick test_obj_vectors;
          Alcotest.test_case "nil car/cdr" `Quick test_obj_nil_car_cdr;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "tower" `Quick test_numerics_tower;
          Alcotest.test_case "complex" `Quick test_numerics_complex;
          Alcotest.test_case "rounding" `Quick test_numerics_rounding;
          Alcotest.test_case "expt" `Quick test_numerics_expt;
          QCheck_alcotest.to_alcotest prop_numerics_field;
        ] );
      ( "rt",
        [
          Alcotest.test_case "intern" `Quick test_rt_intern;
          Alcotest.test_case "sexp round trip" `Quick test_rt_sexp_roundtrip;
          Alcotest.test_case "printing" `Quick test_rt_print;
          Alcotest.test_case "natives via simulated call" `Quick test_rt_natives_via_call;
          Alcotest.test_case "arity errors" `Quick test_rt_arity_errors;
          Alcotest.test_case "deep binding" `Quick test_rt_deep_binding;
          Alcotest.test_case "equality" `Quick test_rt_equal;
          Alcotest.test_case "gc with simulated stack roots" `Quick
            test_rt_gc_under_pressure_with_simulated_stack;
        ] );
    ]
