(* Tests for the s-expression reader and printer. *)

open S1_sexp

let parse = Reader.parse_one
let parse_all = Reader.parse_string

let check_sexp msg expected actual =
  Alcotest.check
    (Alcotest.testable Sexp.pp Sexp.equal)
    msg expected actual

let test_atoms () =
  check_sexp "symbol upcased" (Sexp.Sym "FOO") (parse "foo");
  check_sexp "symbol with dollar" (Sexp.Sym "+$F") (parse "+$f");
  check_sexp "fixnum" (Sexp.Int 42) (parse "42");
  check_sexp "negative" (Sexp.Int (-7)) (parse "-7");
  check_sexp "plus sign" (Sexp.Int 7) (parse "+7");
  check_sexp "ratio" (Sexp.Ratio (2, 3)) (parse "2/3");
  check_sexp "negative ratio" (Sexp.Ratio (-2, 3)) (parse "-2/3");
  check_sexp "float" (Sexp.Float (3.0, Sexp.Single)) (parse "3.0");
  check_sexp "double float" (Sexp.Float (1.5, Sexp.Double)) (parse "1.5d0");
  check_sexp "half float" (Sexp.Float (1.5, Sexp.Half)) (parse "1.5h0");
  check_sexp "exponent float" (Sexp.Float (1500.0, Sexp.Single)) (parse "1.5e3");
  check_sexp "string" (Sexp.Str "hi there") (parse "\"hi there\"");
  check_sexp "string escape" (Sexp.Str "a\"b") (parse "\"a\\\"b\"");
  check_sexp "char" (Sexp.Char 'a') (parse "#\\a");
  check_sexp "char space" (Sexp.Char ' ') (parse "#\\Space");
  check_sexp "minus is a symbol" (Sexp.Sym "-") (parse "-");
  check_sexp "1+ is a symbol" (Sexp.Sym "1+") (parse "1+")

let test_bignum_literals () =
  (* 36-bit fixnum range boundary *)
  check_sexp "max fixnum" (Sexp.Int Reader.fixnum_max)
    (parse (string_of_int Reader.fixnum_max));
  check_sexp "min fixnum" (Sexp.Int Reader.fixnum_min)
    (parse (string_of_int Reader.fixnum_min));
  (match parse "123456789012345678901234567890" with
  | Sexp.Big "123456789012345678901234567890" -> ()
  | other -> Alcotest.failf "expected Big, got %a" Sexp.pp other);
  match parse "-123456789012345678901234567890" with
  | Sexp.Big "-123456789012345678901234567890" -> ()
  | other -> Alcotest.failf "expected negative Big, got %a" Sexp.pp other

let test_lists () =
  check_sexp "empty" Sexp.nil (parse "()");
  check_sexp "flat"
    (Sexp.List [ Sexp.Sym "A"; Sexp.Sym "B"; Sexp.Sym "C" ])
    (parse "(a b c)");
  check_sexp "nested"
    (Sexp.List [ Sexp.Sym "A"; Sexp.List [ Sexp.Sym "B"; Sexp.Int 1 ] ])
    (parse "(a (b 1))");
  check_sexp "dotted"
    (Sexp.Dotted ([ Sexp.Sym "A" ], Sexp.Sym "B"))
    (parse "(a . b)");
  check_sexp "dotted collapses to proper"
    (Sexp.List [ Sexp.Sym "A"; Sexp.Sym "B" ])
    (parse "(a . (b))");
  check_sexp "multi-element dotted"
    (Sexp.Dotted ([ Sexp.Sym "A"; Sexp.Sym "B" ], Sexp.Int 3))
    (parse "(a b . 3)")

let test_sugar () =
  check_sexp "quote" (Sexp.quote (Sexp.Sym "X")) (parse "'x");
  check_sexp "function"
    (Sexp.List [ Sexp.Sym "FUNCTION"; Sexp.Sym "F" ])
    (parse "#'f");
  check_sexp "quasiquote"
    (Sexp.List [ Sexp.Sym "QUASIQUOTE"; Sexp.List [ Sexp.Sym "A"; Sexp.List [ Sexp.Sym "UNQUOTE"; Sexp.Sym "B" ] ] ])
    (parse "`(a ,b)");
  check_sexp "unquote-splicing"
    (Sexp.List [ Sexp.Sym "QUASIQUOTE"; Sexp.List [ Sexp.List [ Sexp.Sym "UNQUOTE-SPLICING"; Sexp.Sym "XS" ] ] ])
    (parse "`(,@xs)")

let test_comments () =
  check_sexp "line comment" (Sexp.Int 2) (parse "; one\n2");
  check_sexp "block comment" (Sexp.Int 3) (parse "#| hi |# 3");
  check_sexp "nested block comment" (Sexp.Int 4) (parse "#| a #| b |# c |# 4");
  Alcotest.(check int) "multiple forms" 3 (List.length (parse_all "1 2 3"))

let test_errors () =
  let fails s =
    match parse_all s with
    | exception Reader.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  fails "(";
  fails ")";
  fails "(a . )";
  fails "(a . b c)";
  fails "\"unterminated";
  fails "#| unterminated";
  fails "(1/0)";
  fails "#z"

let test_paper_programs () =
  (* The paper's example programs must parse. *)
  let exptl =
    "(defun exptl (x n a)\n\
    \  (cond ((zerop n) a)\n\
    \        ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))\n\
    \        (t (exptl (* x x) (floor (/ n 2)) a))))"
  in
  let quadratic =
    "(defun quadratic (a b c)\n\
    \  (let ((d (- (* b b) (* 4.0 a c))))\n\
    \    (cond ((< d 0) '())\n\
    \          ((= d 0) (list (/ (- b) (* 2.0 a))))\n\
    \          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))\n\
    \               (list (/ (+ (- b) sd) 2a)\n\
    \                     (/ (- (- b) sd) 2a)))))))"
  in
  let testfn =
    "(defun testfn (a &optional (b 3.0) (c a))\n\
    \  (let ((d (+$f a b c)) (e (*$f a b c)))\n\
    \    (let ((q (sin$f e)))\n\
    \      (frotz d e (max$f d e))\n\
    \      q)))"
  in
  List.iter
    (fun src ->
      match parse src with
      | Sexp.List (Sexp.Sym "DEFUN" :: _) -> ()
      | other -> Alcotest.failf "unexpected parse: %a" Sexp.pp other)
    [ exptl; quadratic; testfn ]

(* Round trip property: print then reparse gives an equal sexp. *)
let gen_sexp =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let atom =
        oneof
          [
            map (fun s -> Sexp.Sym (String.uppercase_ascii s))
              (string_size ~gen:(char_range 'a' 'z') (int_range 1 8));
            map (fun i -> Sexp.Int i) (int_range (-1000000) 1000000);
            map (fun f -> Sexp.Float (Float.of_int f /. 16.0, Sexp.Single))
              (int_range (-10000) 10000);
            map2 (fun n d -> Sexp.Ratio (n, abs d + 1)) (int_range (-99) 99) (int_range 0 99);
            map (fun s -> Sexp.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
          ]
      in
      if n = 0 then atom
      else
        frequency
          [
            (3, atom);
            (1, map (fun xs -> Sexp.List xs) (list_size (int_range 0 4) (self (n / 2))));
          ])

let prop_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"print/parse round trip" gen_sexp (fun s ->
      Sexp.equal s (parse (Sexp.to_string s)))

let () =
  Alcotest.run "sexp"
    [
      ( "reader",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "bignum literals" `Quick test_bignum_literals;
          Alcotest.test_case "lists" `Quick test_lists;
          Alcotest.test_case "sugar" `Quick test_sugar;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "paper programs" `Quick test_paper_programs;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
