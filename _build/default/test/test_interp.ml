(* Tests for the reference interpreter: the dialect's semantics. *)

open S1_runtime
module I = S1_interp.Interp

let run_str ?(defs = "") expr =
  let it = I.boot () in
  if defs <> "" then ignore (I.eval_string it defs);
  let w = I.eval_string it expr in
  (it, w)

let check_result ?(defs = "") expr expected =
  let it, w = run_str ~defs expr in
  Alcotest.(check string) expr expected (Rt.print_value it.I.rt w)

let test_basics () =
  check_result "42" "42";
  check_result "(+ 1 2)" "3";
  check_result "(if (< 1 2) 'yes 'no)" "YES";
  check_result "(if () 'yes 'no)" "NO";
  check_result "'(a b c)" "(A B C)";
  check_result "(car '(1 2 3))" "1";
  check_result "(cons 1 2)" "(1 . 2)";
  check_result "(progn 1 2 3)" "3";
  check_result "\"hello\"" "\"hello\"";
  check_result "(/ 1 3)" "1/3";
  check_result "(+ 1/3 2/3)" "1";
  check_result "(* 1000000000 1000000000 1000000000)" "1000000000000000000000000000"

let test_let_and_lambda () =
  check_result "(let ((x 2) (y 3)) (* x y))" "6";
  check_result "(let* ((x 2) (y (* x x))) y)" "4";
  check_result "((lambda (x) (* x x)) 7)" "49";
  check_result "(funcall (lambda (x y) (- x y)) 10 4)" "6";
  check_result "(funcall (function cons) 1 2)" "(1 . 2)"

let test_closures () =
  check_result
    ~defs:"(defun make-adder (n) (lambda (x) (+ x n)))"
    "(funcall (make-adder 5) 10)" "15";
  (* closures share mutable state *)
  check_result
    ~defs:
      "(defun make-counter () (let ((n 0)) (lambda () (setq n (1+ n)) n)))\n\
       (defun poke (c) (funcall c))"
    "(let ((c (make-counter))) (poke c) (poke c) (poke c))"
    "3";
  (* two closures over distinct environments *)
  check_result
    ~defs:"(defun make-adder (n) (lambda (x) (+ x n)))"
    "(+ (funcall (make-adder 1) 0) (funcall (make-adder 2) 0))" "3"

let test_exptl () =
  (* The paper's tail-recursive exponentiation (§2). *)
  let defs =
    "(defun exptl (x n a)\n\
    \  (cond ((zerop n) a)\n\
    \        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))\n\
    \        (t (exptl (* x x) (floor n 2) a))))"
  in
  check_result ~defs "(exptl 2 10 1)" "1024";
  check_result ~defs "(exptl 3 5 1)" "243";
  check_result ~defs "(exptl 2 100 1)" "1267650600228229401496703205376"

let test_quadratic () =
  (* The paper's quadratic example (§4.1), with exact rationals. *)
  let defs =
    "(defun quadratic (a b c)\n\
    \  (let ((d (- (* b b) (* 4.0 a c))))\n\
    \    (cond ((< d 0) '())\n\
    \          ((= d 0) (list (/ (- b) (* 2.0 a))))\n\
    \          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))\n\
    \               (list (/ (+ (- b) sd) two-a)\n\
    \                     (/ (- (- b) sd) two-a)))))))"
  in
  check_result ~defs "(quadratic 1.0 -3.0 2.0)" "(2.0 1.0)";
  check_result ~defs "(quadratic 1.0 2.0 1.0)" "(-1.0)";
  check_result ~defs "(quadratic 1.0 0.0 1.0)" "()"

let test_testfn_optionals () =
  (* The paper's §7 example: optional arguments with dependent defaults. *)
  let defs =
    "(defun frotz (d e m) (list d e m))\n\
     (defun testfn (a &optional (b 3.0) (c a))\n\
    \  (let ((d (+$f a b c)) (e (*$f a b c)))\n\
    \    (let ((q (sin$f e)))\n\
    \      (frotz d e (max$f d e))\n\
    \      q)))"
  in
  let it = I.boot () in
  ignore (I.eval_string it defs);
  let r3 = I.eval_string it "(testfn 1.0 2.0 4.0)" in
  Alcotest.(check string) "three args" "0.989358"
    (Printf.sprintf "%.6f"
       (Obj.single_value it.I.rt.Rt.obj r3));
  (* sine of 1*2*4 = sine of 8 *)
  let r1 = I.eval_string it "(testfn 2.0)" in
  (* b defaults to 3.0, c defaults to a=2.0: e = 2*3*2 = 12; sin 12 *)
  Alcotest.(check (float 1e-5)) "one arg" (sin 12.0) (Obj.single_value it.I.rt.Rt.obj r1);
  let r2 = I.eval_string it "(testfn 2.0 1.0)" in
  (* c defaults to a: e = 2*1*2 = 4 *)
  Alcotest.(check (float 1e-5)) "two args" (sin 4.0) (Obj.single_value it.I.rt.Rt.obj r2)

let test_specials () =
  check_result
    ~defs:
      "(defvar *depth* 0)\n\
       (defun probe () *depth*)\n\
       (defun descend (f) (let ((*depth* (1+ *depth*))) (declare (special *depth*)) (funcall f)))"
    "(list (probe) (descend (function probe)) (probe))"
    "(0 1 0)";
  (* defvar proclaims special: LET rebinding is dynamic even without a
     local declare once proclaimed... here we test explicit declares. *)
  check_result
    ~defs:"(defvar *x* 10)\n(defun get-x () *x*)"
    "(list (get-x) (let ((*x* 99)) (declare (special *x*)) (get-x)) (get-x))"
    "(10 99 10)"

let test_caseq () =
  check_result "(caseq 2 ((1) 'one) ((2 3) 'two-or-three) (t 'other))" "TWO-OR-THREE";
  check_result "(caseq 9 ((1) 'one) (t 'other))" "OTHER";
  check_result "(caseq 'b ((a) 1) ((b) 2))" "2";
  check_result "(caseq 'z ((a) 1))" "()"

let test_catch_throw () =
  check_result "(catch 'done (+ 1 (throw 'done 42)))" "42";
  check_result "(catch 'done 1 2 3)" "3";
  check_result
    ~defs:"(defun inner () (throw 'out 'from-inner))"
    "(catch 'out (inner) 'not-reached)" "FROM-INNER";
  (* nested catches with distinct tags *)
  check_result "(catch 'a (catch 'b (throw 'a 1)))" "1";
  check_result "(catch 'a (catch 'b (throw 'b 2)))" "2";
  (* throw with no catch errors *)
  let it = I.boot () in
  match I.eval_string it "(throw 'nowhere 1)" with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected no-catch error"

let test_prog_go_return () =
  check_result
    "(prog (i acc)\n\
    \  (setq i 0) (setq acc 0)\n\
    \  loop\n\
    \  (if (> i 10) (return acc))\n\
    \  (setq acc (+ acc i))\n\
    \  (setq i (1+ i))\n\
    \  (go loop))"
    "55";
  (* fall-through returns nil *)
  check_result "(prog () 1 2)" "()";
  check_result "(do ((i 0 (1+ i)) (acc 0 (+ acc i))) ((= i 5) acc))" "10";
  check_result "(let ((acc ())) (dolist (x '(1 2 3)) (push x acc)) acc)" "(3 2 1)";
  check_result "(let ((n 0)) (dotimes (i 5) (setq n (+ n i))) n)" "10"

let test_do_parallel_stepping () =
  (* DO steps in parallel: b sees a's previous value. *)
  check_result "(do ((a 0 (1+ a)) (b 0 a)) ((= a 3) b))" "2"

let test_rest_args () =
  check_result ~defs:"(defun f (a &rest r) (cons a r))" "(f 1 2 3)" "(1 2 3)";
  check_result ~defs:"(defun f (a &rest r) (cons a r))" "(f 1)" "(1)";
  check_result ~defs:"(defun g (&rest r) (length r))" "(g 1 2 3 4 5)" "5"

let test_mapcar_and_apply () =
  check_result "(mapcar (lambda (x) (* x x)) '(1 2 3 4))" "(1 4 9 16)";
  check_result "(apply (function +) 1 2 '(3 4))" "10";
  check_result "(reduce (function +) '(1 2 3 4) 0)" "10"

let test_tail_recursion_interp () =
  (* Interpreted deep recursion relies on OCaml's stack; moderate depth. *)
  check_result
    ~defs:"(defun count-down (n) (if (zerop n) 'done (count-down (1- n))))"
    "(count-down 10000)" "DONE"

let test_setq_through_closure () =
  check_result
    "(let ((x 1))\n\
    \  (let ((setter (lambda (v) (setq x v))))\n\
    \    (funcall setter 42)\n\
    \    x))"
    "42"

let test_numeric_parity_with_spec () =
  (* floor/mod semantics on negatives *)
  check_result "(floor -7 2)" "-4";
  check_result "(truncate -7 2)" "-3";
  check_result "(mod -7 2)" "1";
  check_result "(rem -7 2)" "-1";
  check_result "(expt 2 10)" "1024";
  check_result "(max 1 5 3)" "5";
  check_result "(abs -2/3)" "2/3"

let test_output () =
  let it, _ = run_str "(progn (princ 'hello) (terpri) (princ 42))" in
  Alcotest.(check string) "output" "HELLO\n42" (Rt.output it.I.rt)

(* Differential property: random arithmetic expressions evaluate equal to
   an OCaml-side evaluator over exact rationals. *)
let gen_arith_expr =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         if n = 0 then map (fun i -> S1_sexp.Sexp.Int i) (int_range (-100) 100)
         else
           oneof
             [
               map (fun i -> S1_sexp.Sexp.Int i) (int_range (-100) 100);
               map2
                 (fun op (a, b) -> S1_sexp.Sexp.List [ S1_sexp.Sexp.Sym op; a; b ])
                 (oneofl [ "+"; "-"; "*" ])
                 (pair (self (n / 2)) (self (n / 2)));
             ])

let prop_interp_matches_fold =
  QCheck2.Test.make ~count:100 ~name:"interpreter agrees with constant folder"
    gen_arith_expr (fun e ->
      let it = I.boot () in
      let w = I.eval_sexp it e in
      let folded =
        let rec f (s : S1_sexp.Sexp.t) : S1_sexp.Sexp.t =
          match s with
          | S1_sexp.Sexp.List (S1_sexp.Sexp.Sym op :: args) -> (
              let args = List.map f args in
              match S1_frontend.Prims.find op with
              | Some { S1_frontend.Prims.fold = Some fo; _ } -> Option.get (fo args)
              | _ -> assert false)
          | atom -> atom
        in
        f e
      in
      S1_sexp.Sexp.equal (Rt.value_to_sexp it.I.rt w) folded)

let () =
  Alcotest.run "interp"
    [
      ( "core",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "let and lambda" `Quick test_let_and_lambda;
          Alcotest.test_case "closures" `Quick test_closures;
          Alcotest.test_case "exptl" `Quick test_exptl;
          Alcotest.test_case "quadratic" `Quick test_quadratic;
          Alcotest.test_case "testfn optionals" `Quick test_testfn_optionals;
          Alcotest.test_case "special variables" `Quick test_specials;
          Alcotest.test_case "caseq" `Quick test_caseq;
          Alcotest.test_case "catch/throw" `Quick test_catch_throw;
          Alcotest.test_case "prog/go/return" `Quick test_prog_go_return;
          Alcotest.test_case "do parallel stepping" `Quick test_do_parallel_stepping;
          Alcotest.test_case "rest args" `Quick test_rest_args;
          Alcotest.test_case "mapcar/apply/reduce" `Quick test_mapcar_and_apply;
          Alcotest.test_case "deep recursion" `Quick test_tail_recursion_interp;
          Alcotest.test_case "setq through closure" `Quick test_setq_through_closure;
          Alcotest.test_case "numeric parity" `Quick test_numeric_parity_with_spec;
          Alcotest.test_case "output" `Quick test_output;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_interp_matches_fold ]);
    ]
