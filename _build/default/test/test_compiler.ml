(* End-to-end tests for the full compiler pipeline: source through the
   optimizer, representation analysis, TNBIND and code generation, run on
   the simulated S-1.  Includes the differential property test against
   the reference interpreter. *)

module Sexp = S1_sexp.Sexp
module Reader = S1_sexp.Reader
module C = S1_core.Compiler
module Rt = S1_runtime.Rt
module Obj = S1_runtime.Obj
module Cpu = S1_machine.Cpu
module I = S1_interp.Interp

let run ?options ?rules srcs =
  let c = C.create ?options ?rules () in
  let w = C.eval_string c srcs in
  (c, w)

let check ?options ?rules msg expected srcs =
  let c, w = run ?options ?rules srcs in
  Alcotest.(check string) msg expected (C.print_value c w)

let test_basics () =
  check "constant" "42" "42";
  check "arith" "3" "(+ 1 2)";
  check "quote" "(A B C)" "'(a b c)";
  check "if" "YES" "(if (< 1 2) 'yes 'no)";
  check "let" "12" "(let ((x 3) (y 4)) (* x y))";
  check "cons" "(1 . 2)" "(cons 1 2)";
  check "exact ratio" "1/3" "(/ 1 3)";
  check "string" "\"hi\"" "\"hi\"";
  check "progn" "3" "(progn 1 2 3)";
  check "setq" "(5 . 6)" "(let ((x 1)) (setq x 5) (cons x 6))"

let test_functions () =
  check "defun and call" "49" "(defun sq (x) (* x x)) (sq 7)";
  check "recursion" "3628800" "(defun fact (n) (if (zerop n) 1 (* n (fact (1- n))))) (fact 10)";
  check "bignum recursion" "15511210043330985984000000"
    "(defun fact (n) (if (zerop n) 1 (* n (fact (1- n))))) (fact 25)";
  check "mutual recursion"
    "T"
    "(defun even? (n) (if (zerop n) t (odd? (1- n))))\n\
     (defun odd? (n) (if (zerop n) () (even? (1- n))))\n\
     (even? 100)";
  check "multiple args" "9" "(defun f (a b c) (+ a (* b c))) (f 1 2 4)"

let test_optionals_and_rest () =
  let defs =
    "(defun testfn (a &optional (b 3.0) (c a)) (list a b c))\n"
  in
  check "three args" "(1.0 2.0 4.0)" (defs ^ "(testfn 1.0 2.0 4.0)");
  check "two args" "(1.0 2.0 1.0)" (defs ^ "(testfn 1.0 2.0)");
  check "one arg" "(1.0 3.0 1.0)" (defs ^ "(testfn 1.0)");
  check "rest" "(1 (2 3 4))" "(defun g (a &rest r) (list a r)) (g 1 2 3 4)";
  check "rest empty" "(1 ())" "(defun g (a &rest r) (list a r)) (g 1)";
  check "optional+rest" "(1 2 (3 4))"
    "(defun h (a &optional (b 9) &rest r) (list a b r)) (h 1 2 3 4)";
  check "optional+rest default" "(1 9 ())"
    "(defun h (a &optional (b 9) &rest r) (list a b r)) (h 1)";
  (* wrong arity errors *)
  let c = C.create () in
  ignore (C.eval_string c "(defun f2 (a b) a)");
  (match C.eval_string c "(f2 1)" with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected arity error");
  match C.eval_string c "(f2 1 2 3)" with
  | exception Rt.Lisp_error _ -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_paper_exptl () =
  let defs =
    "(defun exptl (x n a)\n\
    \  (cond ((zerop n) a)\n\
    \        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))\n\
    \        (t (exptl (* x x) (floor n 2) a))))\n"
  in
  check "exptl small" "1024" (defs ^ "(exptl 2 10 1)");
  check "exptl bignum" "1267650600228229401496703205376" (defs ^ "(exptl 2 100 1)");
  (* X1: "it cannot produce stack overflow no matter how large n is" —
     tail-recursive calls compile as parameter-passing gotos.  exptl only
     recurses log2(n) times, so drive the point home with a linear loop
     as well. *)
  let c, _ =
    run
      (defs
      ^ "(defun loop-sum (n acc) (if (zerop n) acc (loop-sum (1- n) (+ acc n)))) (exptl 1 1 1)"
      )
  in
  Cpu.reset_stats c.C.rt.Rt.cpu;
  Alcotest.(check string) "loop-sum result" "200010000"
    (C.print_value c (C.eval_string c "(loop-sum 20000 0)"));
  let stats = c.C.rt.Rt.cpu.Cpu.stats in
  Alcotest.(check bool) "tail calls used" true (stats.Cpu.tcalls >= 20000);
  Alcotest.(check bool) "constant stack" true (stats.Cpu.stack_high < 200);
  Cpu.reset_stats c.C.rt.Rt.cpu;
  ignore (C.eval_string c "(exptl 2 65536 1)");
  Alcotest.(check bool) "exptl stack constant" true
    (c.C.rt.Rt.cpu.Cpu.stats.Cpu.stack_high < 400)

let test_paper_quadratic () =
  let defs =
    "(defun quadratic (a b c)\n\
    \  (let ((d (- (* b b) (* 4.0 a c))))\n\
    \    (cond ((< d 0) '())\n\
    \          ((= d 0) (list (/ (- b) (* 2.0 a))))\n\
    \          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))\n\
    \               (list (/ (+ (- b) sd) two-a)\n\
    \                     (/ (- (- b) sd) two-a)))))))\n"
  in
  check "two roots" "(2.0 1.0)" (defs ^ "(quadratic 1.0 -3.0 2.0)");
  check "one root" "(-1.0)" (defs ^ "(quadratic 1.0 2.0 1.0)");
  check "no roots" "()" (defs ^ "(quadratic 1.0 0.0 1.0)")

let test_floats_and_pdl () =
  (* type-specific float pipeline *)
  check "float add" "7.5" "(+$f 3.0 4.5)";
  check "nested float" "19.5" "(+$f (*$f 3.0 4.5) 6.0)";
  check "sinc" "1.0" "(sinc$f 0.25)";
  check "declared floats"
    "28.274334"
    "(defun circle-area (r) (declare (single-float r)) (* 3.14159265 (* r r)))\n\
     (circle-area 3.0)";
  (* X4: pdl numbers avoid heap boxes for intermediate floats *)
  let defs =
    "(defun fsum (n acc)\n\
    \  (declare (single-float acc))\n\
    \  (if (zerop n) acc (fsum (1- n) (+$f acc 1.5))))"
  in
  let heap_words options =
    let c = C.create ~options () in
    ignore (C.eval_string c defs);
    ignore (C.eval_string c "(fsum 10 0.0)");
    let before = (S1_runtime.Heap.stats c.C.rt.Rt.heap).S1_runtime.Heap.words_allocated in
    ignore (C.eval_string c "(fsum 2000 0.0)");
    (S1_runtime.Heap.stats c.C.rt.Rt.heap).S1_runtime.Heap.words_allocated - before
  in
  let with_pdl = heap_words S1_codegen.Gen.default_options in
  let without_pdl =
    heap_words { S1_codegen.Gen.default_options with S1_codegen.Gen.pdl_numbers = false }
  in
  Alcotest.(check bool)
    (Printf.sprintf "pdl numbers reduce heap allocation (%d vs %d)" with_pdl without_pdl)
    true
    (with_pdl <= without_pdl)

let test_closures () =
  check "make-adder" "15"
    "(defun make-adder (n) (lambda (x) (+ x n))) (funcall (make-adder 5) 10)";
  check "two environments" "3"
    "(defun make-adder (n) (lambda (x) (+ x n)))\n\
     (+ (funcall (make-adder 1) 0) (funcall (make-adder 2) 0))";
  check "shared mutable state" "3"
    "(defun make-counter () (let ((n 0)) (lambda () (setq n (1+ n)) n)))\n\
     (let ((c (make-counter))) (funcall c) (funcall c) (funcall c))";
  check "closure over loop" "(3 2 1)"
    "(let ((acc ()))\n\
    \  (dolist (x '(1 2 3)) (push x acc))\n\
    \  acc)";
  check "compiled closure through mapcar" "(1 4 9)"
    "(mapcar (lambda (x) (* x x)) '(1 2 3))";
  check "nested capture" "111"
    "(defun f (a) (lambda (b) (lambda (c) (+ a (+ b c)))))\n\
     (funcall (funcall (f 100) 10) 1)"

let test_specials () =
  check "defvar and read" "10" "(defvar *x* 10) (defun getx () *x*) (getx)";
  check "dynamic rebinding" "(10 99 10)"
    "(defvar *x* 10)\n\
     (defun getx () *x*)\n\
     (list (getx) (let ((*x* 99)) (declare (special *x*)) (getx)) (getx))";
  check "special param" "5"
    "(defvar *y* 1)\n\
     (defun usey () *y*)\n\
     (defun withy (*y*) (declare (special *y*)) (usey))\n\
     (withy 5)";
  check "setq special" "77" "(defvar *z* 1) (setq *z* 77) *z*";
  (* regression: a special read after the same function rebinds it must
     see the new binding, not a stale entry-cached cell *)
  check "rebind within same function" "5"
    "(defvar *x* 1)\n\
     (defun f () (let ((*x* 5)) (declare (special *x*)) *x*))\n\
     (f)";
  check "setq through fresh binding stays local" "(7 1)"
    "(defvar *x* 1)\n\
     (defun h () (let ((*x* 9)) (declare (special *x*)) (setq *x* 7) *x*))\n\
     (list (h) *x*)";
  check "throw pops bindings before cached reads" "(5 10)"
    "(defvar *v* 10)\n\
     (defun peek () *v*)\n\
     (defun probe ()\n\
    \  (list (catch 'x (let ((*v* 5)) (declare (special *v*)) (throw 'x *v*))) *v*))\n\
     (probe)";
  (* regression: LET of specials is a parallel binding — a later
     initializer reading an earlier-bound special must see the OLD
     binding (this is what the Gabriel STAK benchmark leans on) *)
  check "parallel special binding" "(1 0)"
    "(defvar *p* 0) (defvar *q* 0)\n\
     (defun peek2 () (list *p* *q*))\n\
     (let ((*p* 1) (*q* *p*)) (declare (special *p* *q*)) (peek2))";
  (* caching ablation gives same semantics *)
  let options =
    { S1_codegen.Gen.default_options with S1_codegen.Gen.cache_specials = false }
  in
  check ~options "no-cache semantics" "(10 99 10)"
    "(defvar *x* 10)\n\
     (defun getx () *x*)\n\
     (list (getx) (let ((*x* 99)) (declare (special *x*)) (getx)) (getx))"

let test_catch_throw () =
  check "catch value" "42" "(catch 'done (+ 1 (throw 'done 42)))";
  check "catch normal" "3" "(catch 'done 1 2 3)";
  check "throw across frames" "FROM-INNER"
    "(defun inner () (throw 'out 'from-inner))\n\
     (catch 'out (inner) 'unreached)";
  check "nested tags" "1" "(catch 'a (catch 'b (throw 'a 1)))";
  check "throw unwinds specials" "(5 10)"
    "(defvar *v* 10)\n\
     (defun peek () *v*)\n\
     (list (catch 'x (let ((*v* 5)) (declare (special *v*)) (throw 'x (peek)))) (peek))"

let test_prog_and_loops () =
  check "prog loop" "55"
    "(prog (i acc) (setq i 0) (setq acc 0)\n\
    \  loop (if (> i 10) (return acc))\n\
    \  (setq acc (+ acc i)) (setq i (1+ i)) (go loop))";
  check "do loop" "10" "(do ((i 0 (1+ i)) (acc 0 (+ acc i))) ((= i 5) acc))";
  check "dotimes" "10" "(let ((n 0)) (dotimes (i 5) (setq n (+ n i))) n)";
  check "fall-through nil" "()" "(prog () 1 2)"

let test_caseq () =
  check "fixnum keys" "TWO" "(caseq 2 ((1) 'one) ((2 3) 'two) (t 'other))";
  check "symbol keys" "B" "(caseq 'y ((x) 'a) ((y z) 'b))";
  check "no match" "()" "(caseq 'q ((x) 'a))";
  check "computed key" "BIG"
    "(defun size (n) (caseq (if (> n 10) 'big 'small) ((big) 'big) ((small) 'small)))\n\
     (size 100)"

let test_local_functions_regression () =
  (* Regression: a call inside a FAST local thunk must not be treated as
     function-tail — it once compiled as a JUMP lambda whose body %RET
     from the whole function, short-circuiting the accumulation. *)
  check "thunk call is not function-tail" "1200"
    "(defun classify (a b c n acc)\n\
    \  (if (zerop n) acc\n\
    \      (classify a b c (1- n)\n\
    \        (+ acc (let ((big (and a (or b c))))\n\
    \                 (if big (+ 1 2 3) (* 2 (+ 0 1))))))))\n\
     (classify t () t 200 0)";
  check "else path too" "400"
    "(defun classify (a b c n acc)\n\
    \  (if (zerop n) acc\n\
    \      (classify a b c (1- n)\n\
    \        (+ acc (let ((big (and a (or b c))))\n\
    \                 (if big (+ 1 2 3) (* 2 (+ 0 1))))))))\n\
     (classify () () t 200 0)"

let test_local_functions () =
  (* the §5 thunks compile as jump/fast lambdas *)
  check "or with effects" "5"
    "(defun f () 5)\n\
     (or (f) (error \"no\"))";
  check "short circuit" "E2"
    "(defun choose (a b c) (if (and a (or b c)) 'e1 'e2))\n\
     (choose t () ())";
  check "short circuit 2" "E1"
    "(defun choose (a b c) (if (and a (or b c)) 'e1 'e2))\n\
     (choose t () 3)"

let test_interop_with_interpreter () =
  (* compiled code calling interpreted code and vice versa *)
  let c = C.create () in
  ignore (I.eval_string c.C.it "(defun interp-double (x) (* x 2))");
  ignore (C.eval_string c "(defun comp-quad (x) (interp-double (interp-double x)))");
  Alcotest.(check string) "compiled calls interpreted" "20"
    (C.print_value c (C.eval_string c "(comp-quad 5)"));
  ignore (I.eval_string c.C.it "(defun interp-call-comp (x) (comp-quad x))");
  Alcotest.(check string) "interpreted calls compiled" "40"
    (C.print_value c (I.eval_string c.C.it "(interp-call-comp 10)"))

let test_gc_during_compiled_run () =
  let config = { S1_machine.Mem.default_config with S1_machine.Mem.heap_words = 16384 } in
  let c = C.create ~config () in
  ignore
    (C.eval_string c
       "(defun churn (n acc)\n\
       \  (if (zerop n) (length acc)\n\
       \      (churn (1- n) (cons (list 1 2 3) (cdr acc)))))");
  Alcotest.(check string) "survives collection" "1"
    (C.print_value c (C.eval_string c "(churn 20000 '(seed))"));
  Alcotest.(check bool) "collected during run" true
    ((S1_runtime.Heap.stats c.C.rt.Rt.heap).S1_runtime.Heap.collections > 0)

let test_ablation_options_preserve_semantics () =
  let probe = "(defun f (n acc) (if (zerop n) acc (f (1- n) (+ acc n)))) (f 100 0)" in
  List.iter
    (fun options -> check ~options "ablated compiler still correct" "5050" probe)
    [
      { S1_codegen.Gen.default_options with S1_codegen.Gen.use_tnbind = false };
      { S1_codegen.Gen.default_options with S1_codegen.Gen.pdl_numbers = false };
      { S1_codegen.Gen.default_options with S1_codegen.Gen.inline_prims = false };
      { S1_codegen.Gen.default_options with S1_codegen.Gen.cache_specials = false };
      { S1_codegen.Gen.default_options with S1_codegen.Gen.checked = false };
    ];
  check ~rules:S1_transform.Rules.nothing "optimizer off still correct" "5050" probe

let test_metacircular_soak () =
  (* a compiled Lisp interpreting Lisp: deep recursion, caseq dispatch,
     assoc environments, heavy consing — the full system under load *)
  let evaluator =
    "(defun env-lookup (name env)\n\
    \  (let ((hit (assq name env))) (if hit (cdr hit) (error \"unbound\"))))\n\
     (defun mbind (params args env)\n\
    \  (if (null params) env\n\
    \      (cons (cons (car params) (car args)) (mbind (cdr params) (cdr args) env))))\n\
     (defun mevlis (xs env) (if (null xs) () (cons (meval (car xs) env) (mevlis (cdr xs) env))))\n\
     (defun mapply (f args)\n\
    \  (if (and (consp f) (eq (car f) 'closure))\n\
    \      (meval (caddr f) (mbind (cadr f) args (cadr (cddr f))))\n\
    \      (error \"bad function\")))\n\
     (defun meval (e env)\n\
    \  (cond ((numberp e) e)\n\
    \        ((null e) ())\n\
    \        ((symbolp e) (env-lookup e env))\n\
    \        (t (caseq (car e)\n\
    \             ((quote) (cadr e))\n\
    \             ((if) (if (meval (cadr e) env) (meval (caddr e) env) (meval (cadr (cddr e)) env)))\n\
    \             ((lambda) (list 'closure (cadr e) (caddr e) env))\n\
    \             ((+) (+ (meval (cadr e) env) (meval (caddr e) env)))\n\
    \             ((-) (- (meval (cadr e) env) (meval (caddr e) env)))\n\
    \             ((*) (* (meval (cadr e) env) (meval (caddr e) env)))\n\
    \             ((<) (< (meval (cadr e) env) (meval (caddr e) env)))\n\
    \             (t (mapply (meval (car e) env) (mevlis (cdr e) env)))))))"
  in
  let c = C.create () in
  ignore (C.eval_string c evaluator);
  Alcotest.(check string) "meta factorial" "3628800"
    (C.print_value c
       (C.eval_string c
          "(meval '((lambda (fact n) (fact fact n))\n\
          \          (lambda (self k) (if (< k 1) 1 (* k (self self (- k 1)))))\n\
          \          10) ())"));
  Alcotest.(check string) "meta bignum factorial" "815915283247897734345611269596115894272000000000"
    (C.print_value c
       (C.eval_string c
          "(meval '((lambda (fact n) (fact fact n))\n\
          \          (lambda (self k) (if (< k 1) 1 (* k (self self (- k 1)))))\n\
          \          40) ())"))

(* Differential testing: compiled vs interpreted. ------------------------- *)

let gen_program =
  let open QCheck2.Gen in
  let var_names = [ "V1"; "V2"; "V3" ] in
  let rec expr n =
    if n = 0 then
      oneof
        [ map (fun i -> Sexp.Int i) (int_range (-50) 50);
          map (fun v -> Sexp.Sym v) (oneofl var_names) ]
    else
      frequency
        [
          (1, map (fun i -> Sexp.Int i) (int_range (-50) 50));
          (2, map (fun v -> Sexp.Sym v) (oneofl var_names));
          (3,
           map2
             (fun op (a, b) -> Sexp.List [ Sexp.Sym op; a; b ])
             (oneofl [ "+"; "-"; "*"; "MAX"; "MIN"; "CONS" ])
             (pair (expr (n / 2)) (expr (n / 2))));
          (2,
           map3
             (fun p a b ->
               Sexp.List
                 [ Sexp.Sym "IF"; Sexp.List [ Sexp.Sym "<"; p; Sexp.Int 0 ]; a; b ])
             (expr (n / 3)) (expr (n / 2)) (expr (n / 2)));
          (1,
           map2
             (fun e body ->
               Sexp.List
                 [ Sexp.Sym "LET"; Sexp.List [ Sexp.List [ Sexp.Sym "V2"; e ] ]; body ])
             (expr (n / 2)) (expr (n / 2)));
          (1,
           map2
             (fun e body ->
               Sexp.List
                 [ Sexp.Sym "PROGN"; Sexp.List [ Sexp.Sym "SETQ"; Sexp.Sym "V1"; e ]; body ])
             (expr (n / 2)) (expr (n / 2)));
          (1,
           map (fun e -> Sexp.List [ Sexp.Sym "CAR"; Sexp.List [ Sexp.Sym "CONS"; e; Sexp.nil ] ])
             (expr (n - 1)));
          (1,
           (* float literals: contagion and f36 rounding must agree *)
           map2
             (fun op (f, b) ->
               Sexp.List
                 [ Sexp.Sym op; Sexp.Float (float_of_int f /. 4.0, Sexp.Single); b ])
             (oneofl [ "+"; "-"; "*"; "MAX" ])
             (pair (int_range (-40) 40) (expr (n / 2))));
          (1,
           (* boolean thunk machinery: AND/OR of effectful tests *)
           map3
             (fun p q r ->
               Sexp.List
                 [ Sexp.Sym "IF";
                   Sexp.List
                     [ Sexp.Sym "AND";
                       Sexp.List [ Sexp.Sym "<"; p; Sexp.Int 0 ];
                       Sexp.List
                         [ Sexp.Sym "OR";
                           Sexp.List [ Sexp.Sym "<"; q; Sexp.Int 10 ];
                           Sexp.List [ Sexp.Sym "<"; Sexp.Int (-10) ; r ] ] ];
                   p; q ])
             (expr (n / 3)) (expr (n / 3)) (expr (n / 3)));
        ]
  in
  sized (fun n ->
      map2
        (fun inits body ->
          Sexp.List
            [ Sexp.Sym "LET";
              Sexp.List (List.map2 (fun v e -> Sexp.List [ Sexp.Sym v; e ]) var_names inits);
              body ])
        (flatten_l
           [ map (fun i -> Sexp.Int i) (int_range (-50) 50);
             map (fun i -> Sexp.Int i) (int_range (-50) 50);
             map (fun i -> Sexp.Int i) (int_range (-50) 50) ])
        (expr (min n 14)))

(* A generated program may be ill-typed (comparing a cons, say).  Type
   errors in this dialect are "is an error" situations, not guaranteed
   signals; the optimizer may legitimately delete an unused pure-but-
   failing computation.  Agreement therefore means: when the interpreter
   yields a value, the compiled code must yield an equal value; when the
   interpreter signals, the compiled code may signal or may have
   optimized the fault away — but a compiled signal on an interpreter
   success is a compiler bug. *)
let agree c compiled interpreted =
  let r1 = try Ok (compiled ()) with Rt.Lisp_error m -> Error m in
  let r2 = try Ok (interpreted ()) with Rt.Lisp_error m -> Error m in
  match (r1, r2) with
  | Ok v1, Ok v2 -> Rt.equal c.C.rt v1 v2
  | _, Error _ -> true
  | Error _, Ok _ -> false

let prop_compiled_matches_interpreted =
  QCheck2.Test.make ~count:150 ~name:"compiled code agrees with the interpreter"
    gen_program (fun prog ->
      let c = C.create () in
      agree c (fun () -> C.eval c prog) (fun () -> I.eval_sexp c.C.it prog))

let prop_optimizer_off_matches =
  QCheck2.Test.make ~count:75 ~name:"unoptimized compiled code agrees too"
    gen_program (fun prog ->
      let c = C.create ~rules:S1_transform.Rules.nothing () in
      agree c (fun () -> C.eval c prog) (fun () -> I.eval_sexp c.C.it prog))

let () =
  Alcotest.run "compiler"
    [
      ( "compiled",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "optionals and rest" `Quick test_optionals_and_rest;
          Alcotest.test_case "paper exptl (X1)" `Quick test_paper_exptl;
          Alcotest.test_case "paper quadratic (X2)" `Quick test_paper_quadratic;
          Alcotest.test_case "floats and pdl numbers" `Quick test_floats_and_pdl;
          Alcotest.test_case "closures (X9)" `Quick test_closures;
          Alcotest.test_case "special variables" `Quick test_specials;
          Alcotest.test_case "catch/throw" `Quick test_catch_throw;
          Alcotest.test_case "prog and loops" `Quick test_prog_and_loops;
          Alcotest.test_case "caseq" `Quick test_caseq;
          Alcotest.test_case "local functions" `Quick test_local_functions;
          Alcotest.test_case "local function tail regression" `Quick
            test_local_functions_regression;
          Alcotest.test_case "interpreter interop" `Quick test_interop_with_interpreter;
          Alcotest.test_case "gc during compiled run" `Quick test_gc_during_compiled_run;
          Alcotest.test_case "ablations preserve semantics" `Quick
            test_ablation_options_preserve_semantics;
          Alcotest.test_case "metacircular soak" `Quick test_metacircular_soak;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_compiled_matches_interpreted;
          QCheck_alcotest.to_alcotest prop_optimizer_off_matches;
        ] );
    ]
